"""Standing queries: triggers, changelogs, delta reuse, and invalidation.

The tentpole contract: a registered standing query, refreshed tick by
tick as its sources receive appends and updates, must always hold the
exact view a from-scratch run over the full stream would produce — and
its changelog, folded from empty, must reproduce that view at every
tick.  Triggers (count / interval / watermark / governor) only decide
*when* work happens, never *what* the answer is.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.records import DataRecord, reset_uid_counter
from repro.data.schemas import Field
from repro.data.sources import MemorySource
from repro.errors import QuotaExceededError, StreamingError
from repro.llm.oracle import SemanticOracle
from repro.llm.simulated import SimulatedLLM
from repro.obs import Tracer, validate_spans
from repro.obs.metrics import MetricsRegistry
from repro.obs.stats import StatisticsStore
from repro.qa.corpus import CorpusSpec, build_corpus, instruction_for
from repro.sem import (
    Dataset,
    QueryProcessorConfig,
    RefreshPolicy,
    StandingQueryManager,
    fold_changelog,
)
from repro.sem.materialize import MaterializationStore
from repro.sem.streaming import diff_records


@pytest.fixture(scope="module")
def qa_bundle():
    return build_corpus(CorpusSpec(seed=19, n_records=18))


def _config(bundle, *, seed: int = 19, **kwargs) -> QueryProcessorConfig:
    llm = SimulatedLLM(oracle=SemanticOracle(bundle.registry), seed=seed)
    kwargs.setdefault("optimize", False)
    kwargs.setdefault("select_models", False)
    return QueryProcessorConfig(llm=llm, seed=seed, **kwargs)


def _normalized(records):
    return [(r.uid, tuple(sorted(r.fields.items()))) for r in records]


def _sem_plan(source) -> Dataset:
    """A delta-safe semantic chain: filter -> map."""
    return (
        Dataset.from_source(source)
        .sem_filter(instruction_for("qa.flag_urgent"))
        .sem_map(
            Field("customer", str, "customer name"),
            instruction_for("qa.customer"),
        )
    )


def _full_run(bundle, records, *, seed: int = 19):
    """From-scratch evaluation over ``records`` on a fresh substrate."""
    source = MemorySource(records, bundle.schema, source_id=bundle.name)
    return _sem_plan(source).run(_config(bundle, seed=seed)).records


def _standing(bundle, base, *, policy=None, store=None, **manager_kwargs):
    """A registered standing query over ``base`` plus its live source."""
    source = MemorySource(base, bundle.schema, source_id=bundle.name)
    config = _config(bundle)
    if store is not None:
        config.materialization_store = store
    manager = StandingQueryManager(store=store, **manager_kwargs)
    query = manager.register(
        "live", _sem_plan(source), config, policy=policy
    )
    return manager, query, source


# ---------------------------------------------------------------------------
# RefreshPolicy validation
# ---------------------------------------------------------------------------


def test_policy_rejects_unknown_trigger():
    with pytest.raises(StreamingError, match="unknown refresh trigger"):
        RefreshPolicy(trigger="cron")


@pytest.mark.parametrize(
    "kwargs",
    [
        {"count": 0},
        {"interval_s": -1.0},
        {"lateness_s": -0.5},
        {"min_batch_usd": -0.01},
        {"max_staleness_s": -1.0},
    ],
)
def test_policy_rejects_negative_knobs(kwargs):
    with pytest.raises(StreamingError):
        RefreshPolicy(**kwargs)


# ---------------------------------------------------------------------------
# diff / fold changelog algebra
# ---------------------------------------------------------------------------


def _recs(uids):
    return [DataRecord({"v": uid}, uid=uid) for uid in uids]


def test_diff_then_fold_roundtrips_arbitrary_edits():
    before = _recs(["a", "b", "c", "d"])
    after = _recs(["b", "x", "c", "y"])
    entries = diff_records(before, after, tick=3)
    assert [r.uid for r in fold_changelog(before, entries)] == [
        "b", "x", "c", "y",
    ]


def test_fold_rejects_mismatched_retract():
    before = _recs(["a", "b"])
    entries = diff_records(before, _recs(["b"]), tick=0)
    with pytest.raises(StreamingError, match="retract at position"):
        fold_changelog(_recs(["z", "b"]), entries)


def test_changelog_entries_carry_lineage():
    parent = DataRecord({"v": 1}, uid="p")
    child = parent.derive(new_fields={"w": 2})
    entries = diff_records([], [child], tick=0)
    assert entries[0].kind == "insert"
    assert entries[0].uid == child.uid
    assert entries[0].lineage == ("p",)


# ---------------------------------------------------------------------------
# Registration
# ---------------------------------------------------------------------------


def test_register_requires_subscribable_source(qa_bundle):
    from repro.sem import logical as L

    dataset = Dataset(L.ScanOp(child=None, source=None))
    manager = StandingQueryManager()
    with pytest.raises(StreamingError, match="no subscribable"):
        manager.register("dead", dataset, _config(qa_bundle))


def test_register_requires_config_or_runner(qa_bundle):
    source = MemorySource(qa_bundle.records(), qa_bundle.schema)
    manager = StandingQueryManager()
    with pytest.raises(StreamingError, match="needs a QueryProcessorConfig"):
        manager.register("bare", Dataset.from_source(source))


def test_register_rejects_duplicate_names(qa_bundle):
    manager, _query, source = _standing(qa_bundle, qa_bundle.records()[:4])
    with pytest.raises(StreamingError, match="already registered"):
        manager.register(
            "live", _sem_plan(source), _config(qa_bundle)
        )


def test_register_primes_a_base_view(qa_bundle):
    records = qa_bundle.records()
    _manager, query, _source = _standing(qa_bundle, records[:8])
    assert query.tick_count == 1
    assert query.ticks[0].fired == "register"
    assert _normalized(query.records) == _normalized(
        _full_run(qa_bundle, records[:8])
    )


# ---------------------------------------------------------------------------
# Count trigger + incremental convergence
# ---------------------------------------------------------------------------


def test_count_trigger_batches_until_threshold(qa_bundle):
    records = qa_bundle.records()
    manager, query, source = _standing(
        qa_bundle,
        records[:10],
        policy=RefreshPolicy(trigger="count", count=4),
        store=MaterializationStore(),
    )
    source.append(records[10:12])
    assert manager.pump() == []  # 2 pending < 4: keep batching
    assert query.pending_appends == 2
    source.append(records[12:14])
    ticks = manager.pump()
    assert [t.fired for t in ticks] == ["count"]
    assert query.pending_appends == 0
    assert _normalized(query.records) == _normalized(
        _full_run(qa_bundle, records[:14])
    )
    assert _normalized(query.folded()) == _normalized(query.records)


def test_ticks_take_the_delta_reuse_path(qa_bundle):
    records = qa_bundle.records()
    store = MaterializationStore()
    manager, query, source = _standing(
        qa_bundle, records[:10], store=store
    )
    primed_cost = query.cumulative_cost_usd
    source.append(records[10:12])
    (tick,) = manager.pump()
    assert tick.reuse_kind == "delta"
    assert tick.reused_prefix >= 1
    assert tick.delta_records == 2
    # O(delta), not O(stream): the tick costs less than re-priming.
    assert tick.cost_usd < primed_cost
    assert _normalized(query.records) == _normalized(
        _full_run(qa_bundle, records[:12])
    )


# ---------------------------------------------------------------------------
# Interval trigger + empty-delta no-ops
# ---------------------------------------------------------------------------


def test_interval_trigger_and_empty_ticks_are_zero_cost(qa_bundle):
    records = qa_bundle.records()
    manager, query, _source = _standing(
        qa_bundle,
        records[:6],
        policy=RefreshPolicy(trigger="interval", interval_s=30.0),
    )
    usage_before = query.config.llm.tracker.checkpoint()
    cost_before = query.cumulative_cost_usd
    view_before = _normalized(query.records)

    assert manager.pump(now_s=query.last_refresh_s + 10.0) == []
    (tick,) = manager.pump(now_s=query.last_refresh_s + 30.5)
    assert tick.fired == "interval"
    assert tick.skipped is True
    assert tick.cost_usd == 0.0
    assert tick.changelog == []
    # Nothing touched the engine: no usage events, no view change.
    assert query.config.llm.tracker.since(usage_before).calls == 0
    assert query.cumulative_cost_usd == cost_before
    assert _normalized(query.records) == view_before
    assert query.folded() is not None  # changelog untouched and foldable


# ---------------------------------------------------------------------------
# Watermark trigger: out-of-order event times
# ---------------------------------------------------------------------------


def test_watermark_holds_back_in_order_events(qa_bundle):
    records = qa_bundle.records()
    manager, query, source = _standing(
        qa_bundle,
        records[:8],
        policy=RefreshPolicy(trigger="watermark", lateness_s=10.0),
    )
    source.append(records[8:9], event_time_s=100.0)
    # Watermark = 100 - 10 = 90; the only pending event sits above it.
    assert query.watermark_s == 90.0
    assert manager.pump() == []

    # A later event advances the watermark past the first event's stamp.
    source.append(records[9:10], event_time_s=115.0)
    assert query.watermark_s == 105.0
    (tick,) = manager.pump()
    assert tick.fired == "watermark"
    assert tick.pending_appends == 2
    assert _normalized(query.records) == _normalized(
        _full_run(qa_bundle, records[:10])
    )


def test_watermark_counts_late_events_and_fires_immediately(qa_bundle):
    records = qa_bundle.records()
    manager, query, source = _standing(
        qa_bundle,
        records[:8],
        policy=RefreshPolicy(trigger="watermark", lateness_s=5.0),
    )
    source.append(records[8:9], event_time_s=200.0)
    source.append(records[9:10], event_time_s=100.0)  # far below watermark
    assert query.late_events == 1
    assert query.max_event_time_s == 200.0  # late data never regresses it
    (tick,) = manager.pump()
    assert tick.fired == "watermark"
    assert "late events" in query.refresh_footer()


def test_watermark_treats_unstamped_events_as_ripe(qa_bundle):
    records = qa_bundle.records()
    manager, query, source = _standing(
        qa_bundle,
        records[:8],
        policy=RefreshPolicy(trigger="watermark", lateness_s=60.0),
    )
    source.append(records[8:10])  # no event_time_s
    (tick,) = manager.pump()
    assert tick.fired == "watermark"
    assert query.watermark_s is None


# ---------------------------------------------------------------------------
# Governor trigger: freshness vs cost
# ---------------------------------------------------------------------------


class _Prior:
    def __init__(self, cost_per_record, selectivity):
        self.cost_per_record = cost_per_record
        self.selectivity = selectivity


class _FakeStats:
    """Minimal stand-in for StatisticsStore.usable_prior."""

    def __init__(self, priors):
        self.priors = priors

    def usable_prior(self, key):
        return self.priors.get(key)

    def note_dataset_version(self, dataset, version, change="append"):
        pass

    def ingest_run(self, *args, **kwargs):
        return 0


def test_governor_defers_until_the_batch_is_worth_it(qa_bundle):
    records = qa_bundle.records()
    stats = _FakeStats({"op": _Prior(cost_per_record=0.01, selectivity=1.0)})
    manager, query, source = _standing(
        qa_bundle,
        records[:8],
        policy=RefreshPolicy(trigger="governor", min_batch_usd=0.03),
        stats_store=stats,
    )
    query.last_stats_plan = [{"key": "op"}]
    source.append(records[8:10])  # estimate 2 * 0.01 = 0.02 < 0.03
    assert manager.pump() == []
    assert query.governor_deferrals == 1
    source.append(records[10:11])  # estimate 3 * 0.01 = 0.03 >= 0.03
    (tick,) = manager.pump()
    assert tick.fired == "governor"
    assert tick.est_cost_usd == pytest.approx(0.03)
    assert _normalized(query.records) == _normalized(
        _full_run(qa_bundle, records[:11])
    )


def test_governor_without_priors_refreshes_immediately(qa_bundle):
    records = qa_bundle.records()
    manager, query, source = _standing(
        qa_bundle,
        records[:8],
        policy=RefreshPolicy(trigger="governor", min_batch_usd=100.0),
    )
    source.append(records[8:9])
    (tick,) = manager.pump()
    # No usable priors: the governor cannot justify deferring.
    assert tick.fired == "governor"
    assert tick.est_cost_usd is None


def test_governor_staleness_floor_forces_a_refresh(qa_bundle):
    records = qa_bundle.records()
    stats = _FakeStats({"op": _Prior(cost_per_record=0.001, selectivity=1.0)})
    manager, query, source = _standing(
        qa_bundle,
        records[:8],
        policy=RefreshPolicy(
            trigger="governor", min_batch_usd=50.0, max_staleness_s=20.0
        ),
        stats_store=stats,
    )
    query.last_stats_plan = [{"key": "op"}]
    source.append(records[8:9])
    assert manager.pump(now_s=query.last_refresh_s + 5.0) == []
    (tick,) = manager.pump(now_s=query.last_refresh_s + 20.0)
    assert tick.fired == "staleness"


# ---------------------------------------------------------------------------
# Update events: forced invalidation past delta-safe prefixes
# ---------------------------------------------------------------------------


def test_update_event_invalidates_and_converges(qa_bundle):
    records = qa_bundle.records()
    store = MaterializationStore()
    manager, query, source = _standing(
        qa_bundle,
        records[:10],
        policy=RefreshPolicy(trigger="count", count=100),  # never by count
        store=store,
    )
    victim = records[0]
    source.update(
        victim.uid, {"body": victim.fields["body"] + " URGENT escalation"}
    )
    (tick,) = manager.pump()
    # Updates force the refresh regardless of the count trigger...
    assert tick.fired == "update"
    assert tick.pending_updates == 1
    # ...the eager cascade recorded update provenance on the store...
    assert store.stats()["update_invalidations"] >= 1
    # ...and the rewritten record's judgments were re-derived, not reused.
    assert _normalized(query.records) == _normalized(
        _full_run_current(qa_bundle, source)
    )
    assert _normalized(query.folded()) == _normalized(query.records)


def _full_run_current(bundle, source):
    """From-scratch evaluation over the source's *current* records."""
    return _full_run(bundle, source.records())


def test_update_event_cascades_to_context_manager(qa_bundle):
    class _Recorder:
        def __init__(self):
            self.invalidated = []

        def invalidate(self, source_id):
            self.invalidated.append(source_id)

    recorder = _Recorder()
    records = qa_bundle.records()
    _manager, query, source = _standing(
        qa_bundle, records[:6], context_manager=recorder
    )
    source.update(records[0].uid, {"priority": 4})
    assert recorder.invalidated == [source.source_id]
    assert query.pending_updates == 1


def test_update_decays_statistics_priors(qa_bundle):
    records = qa_bundle.records()
    stats = StatisticsStore()
    manager, query, source = _standing(
        qa_bundle, records[:8], stats_store=stats
    )
    # Seed a well-observed prior keyed to this dataset.
    for _ in range(8):
        prior = stats.observe(
            "k1", "sem_filter", "m", source.source_id, "run",
            records_in=10, records_out=5, cost_usd=0.01,
        )
    assert prior.observations == 8
    source.append(records[8:9])  # append: halve confidence
    assert stats.usable_prior("k1").observations == 4
    source.update(records[0].uid, {"priority": 1})  # update: drop priors
    assert stats.usable_prior("k1") is None
    assert stats.dataset_invalidations >= 1


# ---------------------------------------------------------------------------
# Deferral under admission control
# ---------------------------------------------------------------------------


def test_quota_rejection_defers_and_retains_pending(qa_bundle):
    records = qa_bundle.records()
    attempts = []

    def flaky_runner(query, tag):
        attempts.append(tag)
        if len(attempts) == 1:
            raise QuotaExceededError("budget spent", tenant="t", reason="budget")
        return list(records[:3]), 0.01, 0.1, None

    source = MemorySource(records[:6], qa_bundle.schema)
    manager = StandingQueryManager()
    config = _config(qa_bundle)
    query = manager.register(
        "guarded",
        Dataset.from_source(source),
        config,
        runner=flaky_runner,
        prime=False,
    )
    source.append(records[6:8])
    (tick,) = manager.pump()
    assert tick.deferred is True
    assert query.pending_appends == 2  # retained for the retry
    (tick,) = manager.pump()
    assert tick.deferred is False
    assert query.pending_appends == 0
    assert len(attempts) == 2


# ---------------------------------------------------------------------------
# Observability: spans, metrics, EXPLAIN footer
# ---------------------------------------------------------------------------


def test_standing_spans_validate_and_carry_tick_attributes(qa_bundle):
    records = qa_bundle.records()
    tracer = Tracer()
    source = MemorySource(records[:8], qa_bundle.schema, source_id=qa_bundle.name)
    llm = SimulatedLLM(
        oracle=SemanticOracle(qa_bundle.registry), seed=19, tracer=tracer
    )
    config = QueryProcessorConfig(
        llm=llm, seed=19, optimize=False, select_models=False
    )
    manager = StandingQueryManager(tracer=tracer)
    manager.register("traced", _sem_plan(source), config)
    source.append(records[8:10])
    manager.pump()
    validate_spans(tracer.spans)
    kinds = [span.kind for span in tracer.spans]
    assert "standing-query" in kinds
    assert kinds.count("standing-tick") == 2  # prime + append tick
    assert "changelog" in kinds
    tick_span = [s for s in tracer.spans if s.kind == "standing-tick"][-1]
    assert tick_span.attributes["fired"] == "count"
    assert "inserts" in tick_span.attributes


def test_streaming_metrics_counters(qa_bundle):
    records = qa_bundle.records()
    metrics = MetricsRegistry()
    manager, _query, source = _standing(
        qa_bundle, records[:8], metrics=metrics
    )
    source.append(records[8:10])
    manager.pump()
    assert metrics.counters["streaming.queries"].value == 1
    assert metrics.counters["streaming.appends"].value == 1
    assert metrics.counters["streaming.appended_records"].value == 2
    assert metrics.counters["streaming.ticks"].value == 2
    assert metrics.counters["streaming.refreshes"].value == 2


def test_explain_appends_refresh_provenance_footer(qa_bundle):
    records = qa_bundle.records()
    manager, query, source = _standing(
        qa_bundle, records[:8], store=MaterializationStore()
    )
    source.append(records[8:10])
    manager.pump()
    rendered = query.explain()
    assert "standing query 'live'" in rendered
    assert "2 ticks (2 refreshes" in rendered
    assert "fired by count" in rendered
    assert "delta prefix=" in rendered


def test_forced_refresh_by_name(qa_bundle):
    records = qa_bundle.records()
    manager, _query, _source = _standing(qa_bundle, records[:6])
    tick = manager.refresh("live")
    assert tick.fired == "forced"
    assert tick.skipped is True  # nothing pending
    with pytest.raises(StreamingError, match="no standing query"):
        manager.refresh("ghost")


# ---------------------------------------------------------------------------
# Property: folded changelog == full recompute on random append schedules
# ---------------------------------------------------------------------------


@pytest.mark.slow
@settings(max_examples=12, deadline=None)
@given(
    split=st.integers(min_value=1, max_value=12),
    chunks=st.lists(st.integers(min_value=1, max_value=4), max_size=5),
    update_at=st.integers(min_value=-1, max_value=4),
)
def test_property_folded_state_matches_full_recompute(split, chunks, update_at):
    """Any append/update schedule: view == from-scratch, fold == view."""
    reset_uid_counter()
    bundle = build_corpus(CorpusSpec(seed=29, n_records=16))
    records = bundle.records()
    manager, query, source = _standing(
        bundle, records[:split], store=MaterializationStore()
    )
    cursor = split
    for index, chunk in enumerate(chunks):
        if index == update_at and query.records:
            target = records[0]
            source.update(
                target.uid, {"body": target.fields["body"] + " amended"}
            )
            manager.pump()
        batch = records[cursor : cursor + chunk]
        cursor += len(batch)
        if not batch:
            break
        source.append(batch)
        manager.pump()
        assert _normalized(query.folded()) == _normalized(query.records)
    assert _normalized(query.records) == _normalized(
        _full_run_from(bundle, source)
    )


def _full_run_from(bundle, source):
    fresh = MemorySource(
        source.records(), bundle.schema, source_id=bundle.name
    )
    return _sem_plan(fresh).run(_config(bundle, seed=19)).records
