"""Tests for the synthetic Enron corpus."""

from repro.data.datasets import generate_enron_corpus
from repro.data.datasets import enron as en
from repro.llm.oracle import DIFFICULTY_PREFIX, SemanticOracle


def test_exactly_250_emails(enron_bundle):
    assert len(enron_bundle.records()) == 250
    assert len(enron_bundle.corpus) == 250


def test_exactly_39_positives(enron_bundle):
    assert enron_bundle.ground_truth["n_relevant"] == 39
    positives = [
        record
        for record in enron_bundle.records()
        if record.annotations[en.INTENT_RELEVANT]
    ]
    assert len(positives) == 39


def test_generation_deterministic():
    a = generate_enron_corpus(seed=11)
    b = generate_enron_corpus(seed=11)
    assert a.ground_truth == b.ground_truth
    assert a.corpus.read_file("email_000.txt") == b.corpus.read_file("email_000.txt")


def test_seed_changes_assignment():
    a = generate_enron_corpus(seed=11)
    b = generate_enron_corpus(seed=12)
    assert a.ground_truth["relevant_filenames"] != b.ground_truth["relevant_filenames"]


def test_relevant_iff_mentions_and_firsthand(enron_bundle):
    for record in enron_bundle.records():
        ann = record.annotations
        assert ann[en.INTENT_RELEVANT] == (
            ann[en.INTENT_MENTIONS] and ann[en.INTENT_FIRSTHAND]
        )


def test_forwarded_news_mentions_but_not_firsthand(enron_bundle):
    news = [
        record
        for record in enron_bundle.records()
        if record.annotations[en.INTENT_MENTIONS]
        and not record.annotations[en.INTENT_FIRSTHAND]
    ]
    assert len(news) == en.N_FORWARDED
    for record in news:
        assert "Forwarded message" in record["body"]


def test_hard_positives_exist(enron_bundle):
    hard = [
        record
        for record in enron_bundle.records()
        if record.annotations[en.INTENT_RELEVANT]
        and record.annotations[DIFFICULTY_PREFIX + en.INTENT_RELEVANT] >= 0.9
    ]
    assert len(hard) == en.N_HARD_POSITIVE


def test_red_herrings_contain_deal_words_without_deals(enron_bundle):
    herrings = [
        record
        for record in enron_bundle.records()
        if not record.annotations[en.INTENT_MENTIONS]
        and any(
            deal.lower() in record["body"].lower()
            for deal in ("raptor", "condor", "death star")
        )
    ]
    assert len(herrings) >= en.N_RED_HERRING


def test_rendered_file_matches_record_fields(enron_bundle):
    record = enron_bundle.records()[0]
    rendered = enron_bundle.corpus.read_file(record["filename"])
    assert rendered.startswith(f"From: {record['sender']}")
    assert f"Subject: {record['subject']}" in rendered


def test_intent_resolution_for_canonical_instructions(enron_bundle):
    registry = enron_bundle.registry
    assert registry.resolve(en.FILTER_MENTIONS).key == en.INTENT_MENTIONS
    assert registry.resolve(en.FILTER_FIRSTHAND).key == en.INTENT_FIRSTHAND
    assert registry.resolve(en.FILTER_RELEVANT).key == en.INTENT_RELEVANT
    assert registry.resolve(en.MAP_SENDER).key == en.INTENT_SENDER
    assert registry.resolve(en.MAP_SUBJECT).key == en.INTENT_SUBJECT
    assert registry.resolve(en.MAP_SUMMARY).key == en.INTENT_SUMMARY


def test_sender_annotation_matches_field(enron_bundle):
    for record in enron_bundle.records()[:20]:
        assert record.annotations[en.INTENT_SENDER] == record["sender"]


def test_oracle_ground_truth_agrees_with_gold_set(enron_bundle):
    oracle = SemanticOracle(enron_bundle.registry)
    gold = set(enron_bundle.ground_truth["relevant_filenames"])
    derived = {
        record["filename"]
        for record in enron_bundle.records()
        if oracle.judge_filter(en.FILTER_RELEVANT, record).truth
    }
    assert derived == gold


def test_emails_have_realistic_length(enron_bundle):
    lengths = [len(record["body"]) for record in enron_bundle.records()]
    assert min(lengths) > 300
    assert sum(lengths) / len(lengths) > 700
