"""Tests for benchmark metrics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bench.metrics import mean_percent_error, percent_error, set_metrics


def test_set_metrics_perfect():
    metrics = set_metrics({"a", "b"}, {"a", "b"})
    assert metrics.precision == metrics.recall == metrics.f1 == 1.0


def test_set_metrics_partial():
    metrics = set_metrics({"a", "b", "c", "d"}, {"a", "b", "x"})
    assert metrics.true_positives == 2
    assert metrics.precision == pytest.approx(2 / 3)
    assert metrics.recall == pytest.approx(0.5)
    assert metrics.f1 == pytest.approx(2 * (2 / 3) * 0.5 / ((2 / 3) + 0.5))


def test_set_metrics_empty_returned():
    metrics = set_metrics({"a"}, set())
    assert metrics.precision == 0.0 and metrics.recall == 0.0 and metrics.f1 == 0.0


def test_set_metrics_empty_gold():
    metrics = set_metrics(set(), {"a"})
    assert metrics.recall == 1.0
    assert metrics.precision == 0.0


def test_set_metrics_coerces_iterables():
    metrics = set_metrics(["a", "a", "b"], ("b", "b"))
    assert metrics.gold == 2 and metrics.returned == 1


def test_percent_error_basic():
    assert percent_error(110, 100) == pytest.approx(10.0)
    assert percent_error(90, 100) == pytest.approx(10.0)


def test_percent_error_missing_is_100():
    assert percent_error(None, 5.0) == 100.0


def test_percent_error_zero_truth_rejected():
    with pytest.raises(ValueError):
        percent_error(1.0, 0.0)


def test_mean_percent_error_averages():
    assert mean_percent_error([100, 120], 100) == pytest.approx(10.0)


def test_mean_percent_error_empty_is_100():
    assert mean_percent_error([], 100) == 100.0


@given(
    st.sets(st.integers(0, 50)),
    st.sets(st.integers(0, 50)),
)
def test_f1_bounded_and_symmetric_in_overlap(gold, returned):
    metrics = set_metrics(gold, returned)
    assert 0.0 <= metrics.f1 <= 1.0
    assert 0.0 <= metrics.precision <= 1.0
    assert 0.0 <= metrics.recall <= 1.0
    if gold == returned and gold:
        assert metrics.f1 == 1.0
