"""Tests for the optimizer: rules, sampler, policies, cost model."""

import pytest

from repro.data.datasets import enron as en
from repro.data.records import DataRecord
from repro.data.schemas import Field, Schema
from repro.data.sources import MemorySource
from repro.llm.oracle import SemanticOracle
from repro.llm.simulated import SimulatedLLM
from repro.sem import logical as L
from repro.sem.config import QueryProcessorConfig
from repro.sem.dataset import Dataset
from repro.sem.optimizer.cost_model import PlanEstimate, estimate_chain, filter_rank
from repro.sem.optimizer.optimizer import Optimizer
from repro.sem.optimizer.policies import Balanced, MaxQuality, MinCost
from repro.sem.optimizer.rules import (
    commuting_runs,
    merge_adjacent_limits,
    push_py_filters,
    reorder_filters,
)
from repro.sem.optimizer.sampler import OperatorProfile, Sampler
from repro.utils.seeding import SeededRng


def _profile(model="m", agreement=1.0, selectivity=0.5, cost=0.001):
    return OperatorProfile(
        model=model,
        agreement=agreement,
        selectivity=selectivity,
        cost_per_record=cost,
        latency_per_record=0.5,
        sample_size=10,
    )


# ---------------------------------------------------------------------------
# Policies
# ---------------------------------------------------------------------------


def test_max_quality_always_champion():
    profiles = {"cheap": _profile("cheap", 1.0, cost=0.0001)}
    assert MaxQuality().choose_model(profiles, "champ") == "champ"


def test_balanced_picks_cheapest_above_floor():
    profiles = {
        "cheap-bad": _profile("cheap-bad", agreement=0.7, cost=0.0001),
        "cheap-good": _profile("cheap-good", agreement=0.95, cost=0.0002),
        "champ": _profile("champ", agreement=1.0, cost=0.01),
    }
    assert Balanced(0.92).choose_model(profiles, "champ") == "cheap-good"


def test_balanced_falls_back_to_champion():
    profiles = {"cheap": _profile("cheap", agreement=0.5)}
    assert Balanced(0.92).choose_model(profiles, "champ") == "champ"


def test_balanced_rejects_bad_floor():
    with pytest.raises(ValueError):
        Balanced(1.5)


def test_min_cost_picks_cheapest():
    profiles = {
        "a": _profile("a", agreement=0.6, cost=0.001),
        "b": _profile("b", agreement=0.99, cost=0.01),
    }
    assert MinCost().choose_model(profiles, "champ") == "a"


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------


def _chain():
    scan = L.ScanOp(child=None, source=None)
    sem1 = L.SemFilterOp(child=None, instruction="sem one")
    py = L.PyFilterOp(child=None, fn=lambda r: True, description="py")
    sem2 = L.SemFilterOp(child=None, instruction="sem two")
    limit = L.LimitOp(child=None, n=3)
    return [scan, sem1, py, sem2, limit]


def test_commuting_runs_found():
    assert commuting_runs(_chain()) == [(1, 4)]


def test_push_py_filters_moves_free_filter_first():
    chain = push_py_filters(_chain())
    assert isinstance(chain[1], L.PyFilterOp)
    assert isinstance(chain[2], L.SemFilterOp)
    # Non-filter operators untouched.
    assert isinstance(chain[0], L.ScanOp) and isinstance(chain[4], L.LimitOp)


def test_reorder_filters_by_rank():
    chain = _chain()
    ranks = {id(chain[1]): 5.0, id(chain[2]): 0.0, id(chain[3]): 1.0}
    reordered = reorder_filters(chain, lambda _pos, op: ranks[id(op)])
    run = reordered[1:4]
    assert [op.label() for op in run] == [
        chain[2].label(), chain[3].label(), chain[1].label()
    ]


def test_merge_adjacent_limits():
    chain = [
        L.ScanOp(child=None, source=None),
        L.LimitOp(child=None, n=5),
        L.LimitOp(child=None, n=2),
    ]
    merged = merge_adjacent_limits(chain)
    assert len(merged) == 2
    assert merged[1].n == 2


# ---------------------------------------------------------------------------
# Cost model
# ---------------------------------------------------------------------------


def test_estimate_chain_shrinks_cardinality():
    scan = L.ScanOp(child=None, source=None)
    sem = L.SemFilterOp(child=None, instruction="x")
    chain = [scan, sem]
    estimate = estimate_chain(
        chain, {1: _profile(selectivity=0.25, cost=0.002)}, input_cardinality=100
    )
    assert estimate.cardinality == pytest.approx(25)
    assert estimate.cost_usd == pytest.approx(0.2)


def test_estimate_downstream_charged_on_survivors():
    scan = L.ScanOp(child=None, source=None)
    sem1 = L.SemFilterOp(child=None, instruction="a")
    sem2 = L.SemFilterOp(child=None, instruction="b")
    chain = [scan, sem1, sem2]
    profiles = {1: _profile(selectivity=0.1, cost=0.001), 2: _profile(selectivity=0.5, cost=0.001)}
    estimate = estimate_chain(chain, profiles, input_cardinality=100)
    assert estimate.cost_usd == pytest.approx(0.1 + 0.01)


def test_filter_rank_prefers_cheap_selective():
    cheap_selective = _profile(selectivity=0.1, cost=0.001)
    pricey_unselective = _profile(selectivity=0.9, cost=0.01)
    assert filter_rank(cheap_selective) < filter_rank(pricey_unselective)


def test_plan_estimate_addition():
    total = PlanEstimate(1.0, 2.0, 100) + PlanEstimate(0.5, 1.0, 10)
    assert total.cost_usd == 1.5 and total.cardinality == 10


# ---------------------------------------------------------------------------
# Sampler
# ---------------------------------------------------------------------------


def test_sampler_profiles_models(enron_bundle):
    llm = SimulatedLLM(oracle=SemanticOracle(enron_bundle.registry), seed=0)
    sampler = Sampler(llm, SeededRng(0))
    sample = sampler.sample_records(enron_bundle.records(), 12)
    profiles = sampler.profile_filter(
        en.FILTER_RELEVANT, sample, ["gpt-4o", "gpt-4o-mini"], "gpt-4o"
    )
    assert profiles["gpt-4o"].agreement == 1.0  # champion agrees with itself
    assert 0 <= profiles["gpt-4o-mini"].agreement <= 1.0
    assert profiles["gpt-4o"].cost_per_record > profiles["gpt-4o-mini"].cost_per_record
    assert 0.0 <= profiles["gpt-4o"].selectivity <= 1.0


def test_sampler_empty_sample_neutral_profiles():
    llm = SimulatedLLM(seed=0)
    sampler = Sampler(llm, SeededRng(0))
    profiles = sampler.profile_filter("anything", [], ["gpt-4o"], "gpt-4o")
    assert profiles["gpt-4o"].sample_size == 0


def test_sampler_eliminates_bad_models():
    """A model that always disagrees sees only the first bandit round."""
    from repro.llm.oracle import DIFFICULTY_PREFIX, IntentRegistry

    registry = IntentRegistry()
    registry.register("t.flag", ["special", "flag"])
    records = [
        DataRecord(
            {"x": i},
            uid=f"r{i}",
            # Maximum ambiguity so the weak tier errs visibly.
            annotations={"t.flag": True, DIFFICULTY_PREFIX + "t.flag": 1.0},
        )
        for i in range(16)
    ]
    llm = SimulatedLLM(oracle=SemanticOracle(registry), seed=3)
    sampler = Sampler(llm, SeededRng(0))
    profiles = sampler.profile_filter(
        "special flag", records, ["gpt-4o", "gpt-3.5-turbo"], "gpt-4o"
    )
    assert profiles["gpt-4o"].sample_size == 16
    assert profiles["gpt-3.5-turbo"].sample_size <= 16


def test_sample_records_deterministic(enron_bundle):
    llm = SimulatedLLM(seed=0)
    a = Sampler(llm, SeededRng(1)).sample_records(enron_bundle.records(), 5)
    b = Sampler(llm, SeededRng(1)).sample_records(enron_bundle.records(), 5)
    assert [r.uid for r in a] == [r.uid for r in b]


# ---------------------------------------------------------------------------
# Optimizer end-to-end decisions
# ---------------------------------------------------------------------------


def test_optimizer_reorders_more_selective_filter_first(enron_bundle):
    llm = SimulatedLLM(oracle=SemanticOracle(enron_bundle.registry), seed=0)
    config = QueryProcessorConfig(llm=llm, policy=MaxQuality(), seed=0)
    dataset = (
        Dataset.from_source(enron_bundle.source())
        .sem_filter(en.FILTER_MENTIONS)     # ~34% selective
        .sem_filter(en.FILTER_FIRSTHAND)    # ~16% selective
    )
    _ops, report = Optimizer(config).optimize(dataset.plan())
    order = [label for label in report.final_order if "SemFilter" in label]
    assert "firsthand" in order[0]


def test_optimizer_respects_explicit_model(enron_bundle):
    llm = SimulatedLLM(oracle=SemanticOracle(enron_bundle.registry), seed=0)
    config = QueryProcessorConfig(llm=llm, policy=MinCost(), seed=0)
    dataset = Dataset.from_source(enron_bundle.source()).sem_filter(
        en.FILTER_RELEVANT, model="gpt-4o"
    )
    ops, report = Optimizer(config).optimize(dataset.plan())
    chosen = next(iter(report.chosen_models.values()))
    assert chosen == "gpt-4o"


def test_optimizer_disabled_binds_naively(enron_bundle):
    llm = SimulatedLLM(oracle=SemanticOracle(enron_bundle.registry), seed=0)
    config = QueryProcessorConfig(llm=llm, optimize=False, seed=0)
    dataset = Dataset.from_source(enron_bundle.source()).sem_filter(en.FILTER_RELEVANT)
    _ops, report = Optimizer(config).optimize(dataset.plan())
    assert not report.optimized
    assert llm.tracker.total().calls == 0  # no sampling spend


def test_optimizer_sampling_cost_accounted(enron_bundle):
    llm = SimulatedLLM(oracle=SemanticOracle(enron_bundle.registry), seed=0)
    config = QueryProcessorConfig(llm=llm, seed=0)
    dataset = Dataset.from_source(enron_bundle.source()).sem_filter(en.FILTER_RELEVANT)
    _ops, report = Optimizer(config).optimize(dataset.plan())
    assert report.sampling_cost_usd > 0
    assert report.sampling_cost_usd == pytest.approx(llm.tracker.total().cost_usd)


def test_py_filter_profiled_for_selectivity():
    schema = Schema([Field("i", int)])
    records = [DataRecord({"i": index}) for index in range(10)]
    llm = SimulatedLLM(seed=0)
    config = QueryProcessorConfig(llm=llm, seed=0)
    dataset = Dataset.from_records(records, schema).filter(
        lambda record: record["i"] < 3, description="small"
    )
    _ops, report = Optimizer(config).optimize(dataset.plan())
    profile = report.profiles["PyFilter(small)"]["python"]
    assert profile.selectivity == pytest.approx(0.3)
    assert profile.cost_per_record == 0.0
