"""Tests for text utilities."""

from hypothesis import given
from hypothesis import strategies as st

from repro.utils.text import (
    approx_token_count,
    extract_keywords,
    jaccard_similarity,
    normalize_text,
    snippet,
    tokenize,
)


def test_tokenize_lowercases_and_splits():
    assert tokenize("Hello, World! Foo-bar") == ["hello", "world", "foo", "bar"]


def test_tokenize_keeps_numbers_and_underscores():
    assert tokenize("2024 identity_theft") == ["2024", "identity_theft"]


def test_tokenize_empty():
    assert tokenize("") == []


def test_normalize_text_collapses_whitespace():
    assert normalize_text("  A \n B\tC ") == "a b c"


def test_approx_token_count_empty():
    assert approx_token_count("") == 0


def test_approx_token_count_scales_with_length():
    short = approx_token_count("hello world")
    long = approx_token_count("hello world " * 100)
    assert long > 50 * short


def test_approx_token_count_at_least_word_count():
    text = "a b c d e f g"
    assert approx_token_count(text) >= 7


def test_extract_keywords_drops_stopwords():
    keywords = extract_keywords("the identity theft reports of the year")
    assert "the" not in keywords
    assert "identity" in keywords


def test_extract_keywords_ranked_by_frequency():
    keywords = extract_keywords("apple banana apple cherry apple banana")
    assert keywords[0] == "apple"
    assert keywords[1] == "banana"


def test_extract_keywords_limit():
    text = " ".join(f"word{i}" for i in range(50))
    assert len(extract_keywords(text, limit=5)) == 5


def test_snippet_short_text_unchanged():
    assert snippet("short text") == "short text"


def test_snippet_truncates_with_ellipsis():
    result = snippet("x" * 500, max_chars=100)
    assert len(result) == 100
    assert result.endswith("...")


def test_snippet_flattens_newlines():
    assert "\n" not in snippet("a\nb\nc")


def test_jaccard_identical():
    assert jaccard_similarity("identity theft data", "identity theft data") == 1.0


def test_jaccard_disjoint():
    assert jaccard_similarity("apple banana", "quartz feldspar") == 0.0


def test_jaccard_both_empty():
    assert jaccard_similarity("", "") == 1.0


def test_jaccard_one_empty():
    assert jaccard_similarity("apple", "") == 0.0


@given(st.text(max_size=300))
def test_tokenize_tokens_are_lowercase(text):
    assert all(token == token.lower() for token in tokenize(text))


@given(st.text(max_size=300), st.text(max_size=300))
def test_jaccard_symmetric(a, b):
    assert jaccard_similarity(a, b) == jaccard_similarity(b, a)


@given(st.text(max_size=300))
def test_token_count_nonnegative(text):
    assert approx_token_count(text) >= 0
