"""Tests for the generation cache."""

import pytest

from repro.llm.cache import GenerationCache


def test_miss_then_hit():
    cache = GenerationCache()
    key = GenerationCache.key("gpt-4o", "prompt")
    hit, _ = cache.get(key)
    assert not hit
    cache.put(key, "answer")
    hit, value = cache.get(key)
    assert hit and value == "answer"
    assert cache.hits == 1 and cache.misses == 1


def test_keys_differ_by_model():
    assert GenerationCache.key("a", "p") != GenerationCache.key("b", "p")


def test_lru_eviction():
    cache = GenerationCache(max_entries=2)
    cache.put("k1", 1)
    cache.put("k2", 2)
    cache.get("k1")  # touch k1 so k2 becomes LRU
    cache.put("k3", 3)
    assert cache.get("k1")[0]
    assert not cache.get("k2")[0]
    assert cache.get("k3")[0]


def test_put_same_key_overwrites():
    cache = GenerationCache()
    cache.put("k", 1)
    cache.put("k", 2)
    assert cache.get("k")[1] == 2
    assert len(cache) == 1


def test_clear_resets_counters():
    cache = GenerationCache()
    cache.put("k", 1)
    cache.get("k")
    cache.clear()
    assert len(cache) == 0
    assert cache.hits == 0 and cache.misses == 0


def test_rejects_nonpositive_capacity():
    with pytest.raises(ValueError):
        GenerationCache(max_entries=0)


def test_eviction_counter_tracks_lru_drops():
    cache = GenerationCache(max_entries=2)
    cache.put("k1", 1)
    cache.put("k2", 2)
    assert cache.evictions == 0
    cache.put("k3", 3)  # drops k1, the LRU entry
    assert cache.evictions == 1
    assert not cache.get("k1")[0]
    assert cache.get("k2")[0] and cache.get("k3")[0]


def test_update_counts_as_update_not_eviction():
    cache = GenerationCache(max_entries=2)
    cache.put("k1", 1)
    cache.put("k1", 9)
    assert cache.updates == 1
    assert cache.evictions == 0
    assert len(cache) == 1
    assert cache.get("k1")[1] == 9


def test_put_refreshes_recency():
    cache = GenerationCache(max_entries=2)
    cache.put("k1", 1)
    cache.put("k2", 2)
    cache.put("k1", 10)  # k1 becomes most-recent; k2 is now LRU
    cache.put("k3", 3)
    assert cache.get("k1")[0]
    assert not cache.get("k2")[0]


def test_clear_can_preserve_stats():
    cache = GenerationCache(max_entries=1)
    cache.put("k1", 1)
    cache.put("k2", 2)  # evicts k1
    cache.get("k2")
    cache.clear(reset_stats=False)
    assert len(cache) == 0
    assert cache.hits == 1
    assert cache.misses == 0
    assert cache.evictions == 1
    assert cache.updates == 0


def test_lifetime_stats_survive_clears():
    cache = GenerationCache()
    cache.put("k1", 1)
    cache.get("k1")
    cache.get("absent")
    cache.clear()  # window counters reset...
    assert cache.hits == 0 and cache.misses == 0
    lifetime = cache.lifetime_stats()
    assert lifetime["hits"] == 1 and lifetime["misses"] == 1
    cache.put("k2", 2)
    cache.get("k2")
    # ...and the lifetime view keeps accumulating across windows.
    assert cache.lifetime_stats()["hits"] == 2


def test_clear_accounting_and_stats_snapshot():
    cache = GenerationCache()
    cache.put("k1", 1)
    cache.put("k2", 2)
    cache.clear(reset_stats=False)
    cache.put("k3", 3)
    cache.clear()
    stats = cache.stats()
    assert stats["clears"] == 2
    assert stats["cleared_entries"] == 3
    assert stats["entries"] == 0
    assert stats["lifetime"]["misses"] == 0


def test_clear_counters_mirror_into_metrics():
    from repro.obs.metrics import MetricsRegistry

    cache = GenerationCache()
    cache.metrics = metrics = MetricsRegistry()
    cache.put("k1", 1)
    cache.get("k1")
    cache.clear()
    counters = metrics.snapshot()["counters"]
    assert counters["cache.clears"] == 1
    assert counters["cache.cleared_entries"] == 1
    # The registry's view is lifetime by construction: clearing the cache
    # never rewinds the mirrored counters.
    assert counters["cache.hits"] == 1
