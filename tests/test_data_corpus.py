"""Tests for the in-memory file corpus."""

import pytest

from repro.data.corpus import FileCorpus
from repro.errors import DataSourceError


def _corpus():
    corpus = FileCorpus("demo")
    corpus.add("b.txt", "bravo contents", annotations={"gold": True})
    corpus.add("a.csv", "x,y\n1,2\n")
    return corpus


def test_list_files_sorted():
    assert _corpus().list_files() == ["a.csv", "b.txt"]


def test_read_file():
    assert _corpus().read_file("b.txt") == "bravo contents"


def test_read_missing_file_raises():
    with pytest.raises(DataSourceError):
        _corpus().read_file("missing.txt")


def test_duplicate_add_raises():
    corpus = _corpus()
    with pytest.raises(DataSourceError):
        corpus.add("a.csv", "again")


def test_len_and_contains():
    corpus = _corpus()
    assert len(corpus) == 2
    assert "a.csv" in corpus and "zzz" not in corpus


def test_to_records_carries_annotations_and_format():
    records = {record["filename"]: record for record in _corpus().to_records()}
    assert records["b.txt"].annotations == {"gold": True}
    assert records["a.csv"]["format"] == "csv"
    assert records["a.csv"].uid == "demo:a.csv"


def test_annotations_for_copy_is_isolated():
    corpus = _corpus()
    annotations = corpus.annotations_for("b.txt")
    annotations["mutated"] = True
    assert "mutated" not in corpus.annotations_for("b.txt")


def test_dump_and_from_directory_roundtrip(tmp_path):
    corpus = _corpus()
    corpus.dump(tmp_path / "lake")
    loaded = FileCorpus.from_directory(tmp_path / "lake")
    assert loaded.list_files() == corpus.list_files()
    assert loaded.read_file("a.csv") == corpus.read_file("a.csv")


def test_to_source_cardinality():
    assert _corpus().to_source().cardinality() == 2
