"""Tests for the pipelined, vectorized executor.

Covers the streaming engine's contract against the barrier escape hatch
(``pipeline=False``): bit-identical records and cost at lower makespan,
batched embedding calls, limit early-exit pushdown, and the adaptive
wave-width controller recovering from rate-limit bursts.
"""

import math

import pytest

from repro.data.datasets import enron as en
from repro.data.records import reset_uid_counter
from repro.data.schemas import Field
from repro.llm.faults import FaultConfig, FaultInjector, RetryPolicy
from repro.llm.models import EMBEDDING_MODEL
from repro.llm.simulated import SimulatedLLM
from repro.sem.config import QueryProcessorConfig
from repro.sem.dataset import Dataset
from repro.sem.physical import AdaptiveParallelism

PARALLELISM = 8


def _three_stage(bundle):
    """The acceptance plan: filter -> map -> top-k rerank."""
    return (
        Dataset.from_source(bundle.source())
        .sem_filter(en.FILTER_MENTIONS)
        .sem_map(Field("summary", str), en.MAP_SUMMARY)
        .sem_topk("most relevant to suspicious deals", k=10, method="llm")
    )


def _run_three_stage(make_llm, bundle, pipeline, seed=0, llm=None):
    # Source-record uids come from a process-global counter and seed the
    # simulated noise; reset so both modes see identical uid sequences.
    reset_uid_counter()
    llm = llm or make_llm(bundle, seed=seed)
    config = QueryProcessorConfig(
        llm=llm, optimize=False, parallelism=PARALLELISM, seed=seed, pipeline=pipeline
    )
    return _three_stage(bundle).run(config), llm


# ---------------------------------------------------------------------------
# Pipelined vs barrier: identical answers, lower makespan
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 1])
def test_pipelined_matches_barrier_and_is_faster(make_llm, enron_bundle, seed):
    barrier, _ = _run_three_stage(make_llm, enron_bundle, pipeline=False, seed=seed)
    pipelined, _ = _run_three_stage(make_llm, enron_bundle, pipeline=True, seed=seed)

    assert [(r.uid, r.fields) for r in pipelined.records] == [
        (r.uid, r.fields) for r in barrier.records
    ]
    assert pipelined.total_cost_usd == pytest.approx(
        barrier.total_cost_usd, abs=1e-9
    )
    assert barrier.total_time_s >= 1.5 * pipelined.total_time_s


@pytest.mark.parametrize("seed", [0, 1])
def test_operator_stats_exact_across_modes(make_llm, enron_bundle, seed):
    barrier, _ = _run_three_stage(make_llm, enron_bundle, pipeline=False, seed=seed)
    pipelined, _ = _run_three_stage(make_llm, enron_bundle, pipeline=True, seed=seed)

    assert len(barrier.operator_stats) == len(pipelined.operator_stats)
    for b, p in zip(barrier.operator_stats, pipelined.operator_stats):
        assert (b.label, b.records_in, b.records_out) == (
            p.label,
            p.records_in,
            p.records_out,
        )
        # llm_calls counts usage events, and batched embeddings merge many
        # per-record embed events into one — so it legitimately shrinks.
        assert b.llm_calls >= p.llm_calls
        assert b.cost_usd == pytest.approx(p.cost_usd, abs=1e-9)


def test_escape_hatch_runs_single_parallel_sections(make_llm, enron_bundle):
    # pipeline=False must reproduce the legacy call shape: one per-record
    # embed call per topk input instead of batched embeds.
    _, llm = _run_three_stage(make_llm, enron_bundle, pipeline=False)
    embed_events = [e for e in llm.tracker.events if e.model == EMBEDDING_MODEL]
    topk_inputs = 84  # FILTER_MENTIONS survivors at seed 0
    # one per record + one for the query
    assert len([e for e in embed_events if not e.cached]) == topk_inputs + 1


# ---------------------------------------------------------------------------
# Batched embeddings
# ---------------------------------------------------------------------------


def test_embed_batch_issues_at_most_ceil_n_over_batch_calls():
    llm = SimulatedLLM(seed=0)
    texts = [f"document number {i} about topic {i % 7}" for i in range(150)]
    batch = 64
    vectors = llm.embed_batch(texts, tag="t", batch_size=batch)

    charged = [
        e
        for e in llm.tracker.events
        if e.model == EMBEDDING_MODEL and not e.cached
    ]
    assert len(charged) <= math.ceil(len(texts) / batch)
    assert len(vectors) == len(texts)


def test_embed_batch_matches_per_text_embeddings_and_skips_cached():
    llm = SimulatedLLM(seed=0)
    texts = ["alpha beta", "gamma delta", "alpha beta"]
    batched = llm.embed_batch(texts, batch_size=64)
    fresh = SimulatedLLM(seed=0)
    singles = [fresh.embed(t) for t in texts]
    for got, want in zip(batched, singles):
        assert got == pytest.approx(want)

    # Second call: everything is already cached — only zero-cost events.
    before = len(llm.tracker.events)
    llm.embed_batch(texts, batch_size=64)
    new_events = llm.tracker.events[before:]
    assert new_events and all(e.cached and e.cost_usd == 0.0 for e in new_events)


def test_pipelined_topk_batches_embeddings(make_llm, enron_bundle):
    _, barrier_llm = _run_three_stage(make_llm, enron_bundle, pipeline=False)
    _, pipelined_llm = _run_three_stage(make_llm, enron_bundle, pipeline=True)

    def charged_embeds(llm):
        return len(
            [
                e
                for e in llm.tracker.events
                if e.model == EMBEDDING_MODEL and not e.cached
            ]
        )

    config = QueryProcessorConfig(llm=pipelined_llm, parallelism=PARALLELISM)
    # One topk cell (hence at most one embed charge) per streamed source
    # batch, plus one query embedding.  Barrier embeds record-at-a-time.
    n_batches = math.ceil(250 / config.resolved_batch_size())
    assert charged_embeds(barrier_llm) == 84 + 1
    assert charged_embeds(pipelined_llm) <= n_batches + 1


# ---------------------------------------------------------------------------
# Limit early-exit pushdown
# ---------------------------------------------------------------------------


def test_limit_short_circuits_upstream_waves(make_llm, enron_bundle):
    def run(pipeline):
        reset_uid_counter()
        llm = make_llm(enron_bundle)
        config = QueryProcessorConfig(
            llm=llm, optimize=False, parallelism=PARALLELISM, pipeline=pipeline
        )
        result = (
            Dataset.from_source(enron_bundle.source())
            .sem_filter(en.FILTER_MENTIONS)
            .limit(12)
            .run(config)
        )
        return result, llm

    barrier, _ = run(False)
    pipelined, pipelined_llm = run(True)

    assert [(r.uid, r.fields) for r in pipelined.records] == [
        (r.uid, r.fields) for r in barrier.records
    ]
    assert len(pipelined.records) == 12

    filter_stats = next(
        s for s in pipelined.operator_stats if "Filter" in s.label
    )
    # The sated limit stopped upstream batches: the filter never judged
    # most of the 250 source records, and spend dropped accordingly.
    assert filter_stats.records_in < 250
    assert pipelined.total_cost_usd < barrier.total_cost_usd
    assert pipelined.total_time_s < barrier.total_time_s


# ---------------------------------------------------------------------------
# Adaptive parallelism under rate-limit bursts
# ---------------------------------------------------------------------------

#: Two 100%-throttle bursts; waves wider than 4 are bounced inside them.
STORMS = ((0.0, 2.5), (8.0, 10.0))


def _run_bursty(make_llm, bundle, storms, adaptive, seed=0):
    reset_uid_counter()
    faults = None
    if storms:
        faults = FaultInjector(
            FaultConfig(
                rate_limit_storms=storms, storm_rate=1.0, storm_safe_parallelism=4
            ),
            seed=seed,
        )
    llm = make_llm(
        bundle,
        seed=seed,
        faults=faults,
        retry=RetryPolicy(max_attempts=1, base_backoff_s=0.5),
    )
    config = QueryProcessorConfig(
        llm=llm,
        optimize=False,
        parallelism=PARALLELISM,
        seed=seed,
        pipeline=True,
        adaptive_parallelism=adaptive,
    )
    plan = (
        Dataset.from_source(bundle.source())
        .sem_filter(en.FILTER_MENTIONS)
        .sem_map(
            [
                (Field("sender", str), en.MAP_SENDER),
                (Field("subject_line", str), en.MAP_SUBJECT),
                (Field("summary", str), en.MAP_SUMMARY),
            ]
        )
    )
    return plan.run(config), llm


def test_adaptive_parallelism_recovers_within_ten_percent(make_llm, enron_bundle):
    fault_free, _ = _run_bursty(make_llm, enron_bundle, (), adaptive=True)
    stormy, _ = _run_bursty(make_llm, enron_bundle, STORMS, adaptive=True)

    # Backing off rescued every record: output is bit-identical to the
    # fault-free run, and the makespan lands within 10% of it.
    assert [(r.uid, r.fields) for r in stormy.records] == [
        (r.uid, r.fields) for r in fault_free.records
    ]
    assert stormy.total_time_s <= 1.1 * fault_free.total_time_s


def test_static_width_degrades_under_bursts(make_llm, enron_bundle):
    fault_free, _ = _run_bursty(make_llm, enron_bundle, (), adaptive=False)
    stormy, _ = _run_bursty(make_llm, enron_bundle, STORMS, adaptive=False)

    # Without the controller, waves stay at the cap, keep drawing 429s,
    # and records are dropped after retry exhaustion.
    assert sum(s.failed_records for s in stormy.operator_stats) > 0
    assert len(stormy.records) < len(fault_free.records)


def test_adaptive_controller_fast_recovery_dynamics():
    controller = AdaptiveParallelism(cap=8, widen_after=3)
    assert controller.width == 8

    controller.observe(rate_limited=True)
    assert controller.width == 4
    # Fast recovery: one clean wave doubles back toward the pre-fault level.
    controller.observe(rate_limited=False)
    assert controller.width == 7
    # Beyond the recovery ceiling, probing is additive every widen_after.
    for _ in range(3):
        controller.observe(rate_limited=False)
    assert controller.width == 8

    # Repeated faults shrink the recovery ceiling toward the safe width.
    controller.observe(rate_limited=True)
    controller.observe(rate_limited=False)
    assert controller.width == 7
    controller.observe(rate_limited=True)
    assert controller.width == 3


def test_adaptive_controller_floor_and_cap():
    controller = AdaptiveParallelism(cap=2, min_width=1, widen_after=1)
    for _ in range(5):
        controller.observe(rate_limited=True)
    assert controller.width == 1
    for _ in range(10):
        controller.observe(rate_limited=False)
    assert controller.width == 2
