"""Tests for the search operator's policy behaviour."""

from repro.core.agent_policies import SearchAgentPolicy
from repro.core.runtime import AnalyticsRuntime


def test_search_respects_k_and_read_top(legal_bundle):
    runtime = AnalyticsRuntime.for_bundle(legal_bundle, seed=6)
    context = runtime.make_context(legal_bundle, build_index=True)
    result = runtime.search(
        context,
        "identity theft statistics",
        policy=SearchAgentPolicy(k=4, read_top=2),
    )
    # Step 0's vector_search asked for 4; findings keep the read_top=2.
    assert len(result.findings["relevant_items"]) == 2
    step0 = result.agent.trace.steps[0]
    assert ", 4)" in step0.code


def test_search_findings_drive_description(legal_bundle):
    runtime = AnalyticsRuntime.for_bundle(legal_bundle, seed=6)
    context = runtime.make_context(legal_bundle, build_index=True)
    result = runtime.search(context, "identity theft statistics")
    for key in result.findings["relevant_items"]:
        assert key in result.output_context.desc


def test_search_on_empty_context_degrades_gracefully(legal_bundle):
    runtime = AnalyticsRuntime.for_bundle(legal_bundle, seed=6)
    empty = runtime.make_context(
        [], schema=legal_bundle.schema, desc="an empty lake", name="empty"
    )
    result = runtime.search(empty, "anything at all")
    assert result.findings.get("relevant_items") == []
    assert "(none found)" in result.output_context.desc


def test_search_cost_is_small_relative_to_compute(legal_bundle):
    from repro.data.datasets.kramabench import QUERY_RATIO

    runtime = AnalyticsRuntime.for_bundle(legal_bundle, seed=6)
    context = runtime.make_context(legal_bundle, build_index=True)
    search_result = runtime.search(context, "identity theft statistics")
    compute_result = runtime.compute(context, QUERY_RATIO)
    assert search_result.cost_usd < 0.5 * compute_result.cost_usd
