"""Tests for the virtual clock."""

import pytest

from repro.utils.clock import PipelineSchedule, VirtualClock, pipeline_makespan, waves


def test_advance_accumulates():
    clock = VirtualClock()
    clock.advance(1.5)
    clock.advance(2.5)
    assert clock.elapsed == pytest.approx(4.0)


def test_advance_rejects_negative():
    with pytest.raises(ValueError):
        VirtualClock().advance(-1.0)


def test_parallel_makespan_single_wave():
    clock = VirtualClock()
    charged = clock.advance_parallel([1.0, 2.0, 3.0], parallelism=3)
    assert charged == pytest.approx(3.0)
    assert clock.elapsed == pytest.approx(3.0)


def test_parallel_makespan_multiple_waves():
    clock = VirtualClock()
    # Waves: [1,2] -> 2s, [3,4] -> 4s, [5] -> 5s.
    charged = clock.advance_parallel([1, 2, 3, 4, 5], parallelism=2)
    assert charged == pytest.approx(11.0)


def test_parallel_with_parallelism_one_is_sum():
    clock = VirtualClock()
    clock.advance_parallel([1.0, 2.0, 3.0], parallelism=1)
    assert clock.elapsed == pytest.approx(6.0)


def test_parallel_rejects_bad_parallelism():
    with pytest.raises(ValueError):
        VirtualClock().advance_parallel([1.0], parallelism=0)


def test_marks_and_since():
    clock = VirtualClock()
    clock.advance(3.0)
    clock.mark("start")
    clock.advance(2.0)
    assert clock.since("start") == pytest.approx(2.0)


def test_since_unknown_mark_raises():
    with pytest.raises(KeyError):
        VirtualClock().since("missing")


def test_reset_clears_everything():
    clock = VirtualClock()
    clock.advance(5.0)
    clock.mark("m")
    clock.reset()
    assert clock.elapsed == 0.0
    with pytest.raises(KeyError):
        clock.since("m")


def test_waves_helper():
    assert waves(0, 4) == 0
    assert waves(1, 4) == 1
    assert waves(4, 4) == 1
    assert waves(5, 4) == 2
    with pytest.raises(ValueError):
        waves(3, 0)


def test_parallel_empty_latency_list_charges_nothing():
    clock = VirtualClock()
    charged = clock.advance_parallel([], parallelism=4)
    assert charged == 0.0
    assert clock.elapsed == 0.0


def test_parallel_wider_than_item_count_is_one_wave():
    clock = VirtualClock()
    # parallelism far exceeds n_items: everything fits in a single wave,
    # charged at the slowest item.
    charged = clock.advance_parallel([1.0, 4.0, 2.0], parallelism=100)
    assert charged == pytest.approx(4.0)
    assert clock.elapsed == pytest.approx(4.0)


# ---------------------------------------------------------------------------
# Pipeline sections
# ---------------------------------------------------------------------------


def test_pipeline_makespan_matches_recurrence():
    # finish[b][s] = max(finish[b][s-1], finish[b-1][s]) + t[b][s].
    cells = [[2.0, 3.0], [2.0, 3.0], [2.0, 3.0]]
    # Batch 0: 2 then 3 -> done 5.  Stage 1 is the bottleneck: batches
    # leave it at 5, 8, 11.
    assert pipeline_makespan(cells) == pytest.approx(11.0)


def test_pipeline_makespan_reduces_to_sum_for_single_batch():
    assert pipeline_makespan([[1.0, 2.0, 3.0]]) == pytest.approx(6.0)


def test_pipeline_makespan_reduces_to_sum_for_single_stage():
    # One stage: batches serialize on it.
    assert pipeline_makespan([[2.0], [3.0], [4.0]]) == pytest.approx(9.0)


def test_pipeline_makespan_empty_and_ragged():
    assert pipeline_makespan([]) == 0.0
    assert pipeline_makespan([[], []]) == 0.0
    # A batch filtered out after stage 0 just has fewer cells.
    assert pipeline_makespan([[2.0, 1.0], [2.0]]) == pytest.approx(4.0)


def test_pipeline_schedule_is_online_form_of_makespan():
    cells = [[1.0, 5.0, 2.0], [3.0, 1.0], [2.0, 2.0, 2.0]]
    schedule = PipelineSchedule()
    for row in cells:
        schedule.start_batch()
        for stage, seconds in enumerate(row):
            schedule.record(stage, seconds)
    assert schedule.makespan == pytest.approx(pipeline_makespan(cells))


def test_pipeline_schedule_repeat_stage_extends_cell():
    # Recording the same stage twice within one batch (wave retry) extends
    # that cell rather than opening a new one.
    schedule = PipelineSchedule()
    schedule.start_batch()
    schedule.record(0, 2.0)
    schedule.record(0, 1.5)
    assert schedule.makespan == pytest.approx(3.5)


def test_pipeline_schedule_rejects_bad_cells():
    schedule = PipelineSchedule()
    schedule.start_batch()
    with pytest.raises(ValueError):
        schedule.record(0, -1.0)
    with pytest.raises(ValueError):
        schedule.record(-1, 1.0)


def test_pipeline_of_parallel_wave_makespans_composes():
    # Nested accounting: each pipeline cell is itself the makespan of a
    # parallel section.  The outer grid charges the critical path of the
    # inner wave makespans.
    clock = VirtualClock()
    inner = VirtualClock()
    cells = []
    for batch_latencies in ([1.0, 2.0, 3.0, 4.0], [2.0, 2.0], [5.0]):
        stage0 = inner.advance_parallel(list(batch_latencies), parallelism=2)
        stage1 = inner.advance_parallel([0.5] * len(batch_latencies), parallelism=2)
        cells.append([stage0, stage1])
    charged = clock.advance_pipeline(cells)
    # Stage-0 cells: [max(1,2)+max(3,4), max(2,2), max(5)] = [6, 2, 5];
    # stage-1 cells: [1.0, 0.5, 0.5].  Stage 0 serializes to 13, then the
    # last batch's stage-1 wave lands on top.
    assert charged == pytest.approx(13.5)
    assert clock.elapsed == pytest.approx(13.5)
