"""Tests for the virtual clock."""

import pytest

from repro.utils.clock import VirtualClock, waves


def test_advance_accumulates():
    clock = VirtualClock()
    clock.advance(1.5)
    clock.advance(2.5)
    assert clock.elapsed == pytest.approx(4.0)


def test_advance_rejects_negative():
    with pytest.raises(ValueError):
        VirtualClock().advance(-1.0)


def test_parallel_makespan_single_wave():
    clock = VirtualClock()
    charged = clock.advance_parallel([1.0, 2.0, 3.0], parallelism=3)
    assert charged == pytest.approx(3.0)
    assert clock.elapsed == pytest.approx(3.0)


def test_parallel_makespan_multiple_waves():
    clock = VirtualClock()
    # Waves: [1,2] -> 2s, [3,4] -> 4s, [5] -> 5s.
    charged = clock.advance_parallel([1, 2, 3, 4, 5], parallelism=2)
    assert charged == pytest.approx(11.0)


def test_parallel_with_parallelism_one_is_sum():
    clock = VirtualClock()
    clock.advance_parallel([1.0, 2.0, 3.0], parallelism=1)
    assert clock.elapsed == pytest.approx(6.0)


def test_parallel_rejects_bad_parallelism():
    with pytest.raises(ValueError):
        VirtualClock().advance_parallel([1.0], parallelism=0)


def test_marks_and_since():
    clock = VirtualClock()
    clock.advance(3.0)
    clock.mark("start")
    clock.advance(2.0)
    assert clock.since("start") == pytest.approx(2.0)


def test_since_unknown_mark_raises():
    with pytest.raises(KeyError):
        VirtualClock().since("missing")


def test_reset_clears_everything():
    clock = VirtualClock()
    clock.advance(5.0)
    clock.mark("m")
    clock.reset()
    assert clock.elapsed == 0.0
    with pytest.raises(KeyError):
        clock.since("m")


def test_waves_helper():
    assert waves(0, 4) == 0
    assert waves(1, 4) == 1
    assert waves(4, 4) == 1
    assert waves(5, 4) == 2
    with pytest.raises(ValueError):
        waves(3, 0)
