"""Tests for the virtual clock."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.clock import PipelineSchedule, VirtualClock, pipeline_makespan, waves


def test_advance_accumulates():
    clock = VirtualClock()
    clock.advance(1.5)
    clock.advance(2.5)
    assert clock.elapsed == pytest.approx(4.0)


def test_advance_rejects_negative():
    with pytest.raises(ValueError):
        VirtualClock().advance(-1.0)


def test_parallel_makespan_single_wave():
    clock = VirtualClock()
    charged = clock.advance_parallel([1.0, 2.0, 3.0], parallelism=3)
    assert charged == pytest.approx(3.0)
    assert clock.elapsed == pytest.approx(3.0)


def test_parallel_makespan_multiple_waves():
    clock = VirtualClock()
    # Waves: [1,2] -> 2s, [3,4] -> 4s, [5] -> 5s.
    charged = clock.advance_parallel([1, 2, 3, 4, 5], parallelism=2)
    assert charged == pytest.approx(11.0)


def test_parallel_with_parallelism_one_is_sum():
    clock = VirtualClock()
    clock.advance_parallel([1.0, 2.0, 3.0], parallelism=1)
    assert clock.elapsed == pytest.approx(6.0)


def test_parallel_rejects_bad_parallelism():
    with pytest.raises(ValueError):
        VirtualClock().advance_parallel([1.0], parallelism=0)


def test_marks_and_since():
    clock = VirtualClock()
    clock.advance(3.0)
    clock.mark("start")
    clock.advance(2.0)
    assert clock.since("start") == pytest.approx(2.0)


def test_since_unknown_mark_raises():
    with pytest.raises(KeyError):
        VirtualClock().since("missing")


def test_reset_clears_everything():
    clock = VirtualClock()
    clock.advance(5.0)
    clock.mark("m")
    clock.reset()
    assert clock.elapsed == 0.0
    with pytest.raises(KeyError):
        clock.since("m")


def test_waves_helper():
    assert waves(0, 4) == 0
    assert waves(1, 4) == 1
    assert waves(4, 4) == 1
    assert waves(5, 4) == 2
    with pytest.raises(ValueError):
        waves(3, 0)


def test_parallel_empty_latency_list_charges_nothing():
    clock = VirtualClock()
    charged = clock.advance_parallel([], parallelism=4)
    assert charged == 0.0
    assert clock.elapsed == 0.0


def test_parallel_wider_than_item_count_is_one_wave():
    clock = VirtualClock()
    # parallelism far exceeds n_items: everything fits in a single wave,
    # charged at the slowest item.
    charged = clock.advance_parallel([1.0, 4.0, 2.0], parallelism=100)
    assert charged == pytest.approx(4.0)
    assert clock.elapsed == pytest.approx(4.0)


# ---------------------------------------------------------------------------
# Pipeline sections
# ---------------------------------------------------------------------------


def test_pipeline_makespan_matches_recurrence():
    # finish[b][s] = max(finish[b][s-1], finish[b-1][s]) + t[b][s].
    cells = [[2.0, 3.0], [2.0, 3.0], [2.0, 3.0]]
    # Batch 0: 2 then 3 -> done 5.  Stage 1 is the bottleneck: batches
    # leave it at 5, 8, 11.
    assert pipeline_makespan(cells) == pytest.approx(11.0)


def test_pipeline_makespan_reduces_to_sum_for_single_batch():
    assert pipeline_makespan([[1.0, 2.0, 3.0]]) == pytest.approx(6.0)


def test_pipeline_makespan_reduces_to_sum_for_single_stage():
    # One stage: batches serialize on it.
    assert pipeline_makespan([[2.0], [3.0], [4.0]]) == pytest.approx(9.0)


def test_pipeline_makespan_empty_and_ragged():
    assert pipeline_makespan([]) == 0.0
    assert pipeline_makespan([[], []]) == 0.0
    # A batch filtered out after stage 0 just has fewer cells.
    assert pipeline_makespan([[2.0, 1.0], [2.0]]) == pytest.approx(4.0)


def test_pipeline_schedule_is_online_form_of_makespan():
    cells = [[1.0, 5.0, 2.0], [3.0, 1.0], [2.0, 2.0, 2.0]]
    schedule = PipelineSchedule()
    for row in cells:
        schedule.start_batch()
        for stage, seconds in enumerate(row):
            schedule.record(stage, seconds)
    assert schedule.makespan == pytest.approx(pipeline_makespan(cells))


def test_pipeline_schedule_repeat_stage_extends_cell():
    # Recording the same stage twice within one batch (wave retry) extends
    # that cell rather than opening a new one.
    schedule = PipelineSchedule()
    schedule.start_batch()
    schedule.record(0, 2.0)
    schedule.record(0, 1.5)
    assert schedule.makespan == pytest.approx(3.5)


def test_pipeline_schedule_rejects_bad_cells():
    schedule = PipelineSchedule()
    schedule.start_batch()
    with pytest.raises(ValueError):
        schedule.record(0, -1.0)
    with pytest.raises(ValueError):
        schedule.record(-1, 1.0)


def test_pipeline_of_parallel_wave_makespans_composes():
    # Nested accounting: each pipeline cell is itself the makespan of a
    # parallel section.  The outer grid charges the critical path of the
    # inner wave makespans.
    clock = VirtualClock()
    inner = VirtualClock()
    cells = []
    for batch_latencies in ([1.0, 2.0, 3.0, 4.0], [2.0, 2.0], [5.0]):
        stage0 = inner.advance_parallel(list(batch_latencies), parallelism=2)
        stage1 = inner.advance_parallel([0.5] * len(batch_latencies), parallelism=2)
        cells.append([stage0, stage1])
    charged = clock.advance_pipeline(cells)
    # Stage-0 cells: [max(1,2)+max(3,4), max(2,2), max(5)] = [6, 2, 5];
    # stage-1 cells: [1.0, 0.5, 0.5].  Stage 0 serializes to 13, then the
    # last batch's stage-1 wave lands on top.
    assert charged == pytest.approx(13.5)
    assert clock.elapsed == pytest.approx(13.5)


# ---------------------------------------------------------------------------
# PipelineSchedule properties (hypothesis)
# ---------------------------------------------------------------------------

#: Cell durations include exact zeros: zero-duration cells are how the
#: executor reports batches that hit only cached calls in a stage.
_durations = st.one_of(
    st.just(0.0),
    st.floats(min_value=0.0, max_value=60.0, allow_nan=False, allow_infinity=False),
)

#: Rectangular grids (every batch visits every stage).
_rect_grids = st.integers(min_value=1, max_value=5).flatmap(
    lambda n_stages: st.lists(
        st.lists(_durations, min_size=n_stages, max_size=n_stages),
        min_size=1,
        max_size=6,
    )
)

#: Ragged grids: batches may die mid-pipeline (fewer cells), and the grid
#: itself may be empty or hold only empty rows.
_ragged_grids = st.lists(
    st.lists(_durations, min_size=0, max_size=5), min_size=0, max_size=6
)


@given(_rect_grids)
@settings(max_examples=200, deadline=None)
def test_schedule_matches_textbook_recurrence(cells):
    # finish[b][s] = max(finish[b][s-1], finish[b-1][s]) + t[b][s].
    finish = {}
    for b, row in enumerate(cells):
        for s, seconds in enumerate(row):
            ready = max(finish.get((b, s - 1), 0.0), finish.get((b - 1, s), 0.0))
            finish[(b, s)] = ready + seconds
    expected = finish[(len(cells) - 1, len(cells[0]) - 1)]
    assert pipeline_makespan(cells) == pytest.approx(expected)


@given(_ragged_grids)
@settings(max_examples=200, deadline=None)
def test_makespan_bounded_by_row_column_and_total_sums(cells):
    makespan = pipeline_makespan(cells)
    row_sums = [sum(row) for row in cells]
    n_stages = max((len(row) for row in cells), default=0)
    column_sums = [
        sum(row[s] for row in cells if s < len(row)) for s in range(n_stages)
    ]
    # Critical path dominates every batch and every stage, and pipelining
    # can never beat fully-sequential execution.
    assert makespan >= max(row_sums, default=0.0) - 1e-9
    assert makespan >= max(column_sums, default=0.0) - 1e-9
    assert makespan <= sum(row_sums) + 1e-9


@given(st.lists(_durations, min_size=0, max_size=8))
@settings(max_examples=100, deadline=None)
def test_single_batch_grid_reduces_to_stage_sum(row):
    # One batch never waits on a busy stage: the pipeline degenerates to
    # the sequential sum, even with zero-duration cells interleaved.
    assert pipeline_makespan([row]) == pytest.approx(sum(row))


@given(st.lists(st.lists(st.just(0.0), min_size=0, max_size=4), max_size=6))
@settings(max_examples=50, deadline=None)
def test_all_zero_grid_has_zero_makespan(cells):
    assert pipeline_makespan(cells) == 0.0


@given(_ragged_grids)
@settings(max_examples=150, deadline=None)
def test_online_makespan_is_monotone_and_empty_section_is_zero(cells):
    schedule = PipelineSchedule()
    # Empty section (or batches announced with no cells): zero makespan.
    assert schedule.makespan == 0.0
    last = 0.0
    for row in cells:
        schedule.start_batch()
        for stage, seconds in enumerate(row):
            current = schedule.record(stage, seconds)
            # Recording work never rewinds the section clock, and the
            # scheduled cell lies inside the reported makespan.
            assert current >= last - 1e-9
            start, end = schedule.last_cell
            assert 0.0 <= start <= end <= current + 1e-9
            last = current
    assert schedule.makespan == pytest.approx(pipeline_makespan(cells))


@given(_ragged_grids, st.floats(min_value=0.1, max_value=50.0))
@settings(max_examples=100, deadline=None)
def test_makespan_scales_linearly(cells, factor):
    scaled = [[seconds * factor for seconds in row] for row in cells]
    assert pipeline_makespan(scaled) == pytest.approx(
        pipeline_makespan(cells) * factor, rel=1e-9
    )


@given(_rect_grids, st.data())
@settings(max_examples=150, deadline=None)
def test_growing_one_cell_never_shrinks_makespan(cells, data):
    b = data.draw(st.integers(min_value=0, max_value=len(cells) - 1))
    s = data.draw(st.integers(min_value=0, max_value=len(cells[0]) - 1))
    extra = data.draw(st.floats(min_value=0.0, max_value=30.0))
    grown = [list(row) for row in cells]
    grown[b][s] += extra
    assert pipeline_makespan(grown) >= pipeline_makespan(cells) - 1e-9
