"""Tests for the corpus-agnostic GenericResearchPolicy."""

from repro.agents.codeagent import CodeAgent
from repro.agents.filetools import build_file_tools
from repro.agents.policies import GenericResearchPolicy
from repro.agents.policies.generic_research import task_keywords
from repro.bench.metrics import set_metrics
from repro.data.datasets import realestate as re_mod
from repro.llm.oracle import SemanticOracle
from repro.llm.simulated import SimulatedLLM
from repro.sem import Dataset, QueryProcessorConfig


def test_task_keywords_drop_noise():
    keywords = task_keywords(
        "Return all listings which mention a view of the water, city, or mountains."
    )
    assert "view" in keywords and "water" in keywords
    assert "return" not in keywords and "listings" not in keywords


def _run_generic(bundle, task, seed=0, **policy_kwargs):
    llm = SimulatedLLM(oracle=SemanticOracle(bundle.registry), seed=seed)
    agent = CodeAgent(
        llm,
        build_file_tools(bundle.corpus),
        GenericResearchPolicy(**policy_kwargs),
        seed=seed,
    )
    return agent.run(task), llm


def test_generic_policy_lexical_task_works(realestate_bundle):
    """'View' is stated literally in listings, so grep-and-read succeeds."""
    gold = {
        f"listing_{record['listing_id']}.txt"
        for record in realestate_bundle.records()
        if record.annotations[re_mod.INTENT_VIEW]
    }
    result, _llm = _run_generic(
        realestate_bundle,
        "Return all listings which mention a view of the water, city, or mountains.",
        diligence=120,
    )
    metrics = set_metrics(gold, result.answer or [])
    assert metrics.recall > 0.9
    assert metrics.precision > 0.6


def test_generic_policy_semantic_task_underperforms_sem_filter(realestate_bundle):
    """'Modern and attractive' is a judgment, not a keyword — the lexical
    agent's recall falls well short of the semantic filter's."""
    gold = {
        f"listing_{record['listing_id']}.txt"
        for record in realestate_bundle.records()
        if record.annotations[re_mod.INTENT_MODERN]
    }
    result, _llm = _run_generic(
        realestate_bundle,
        "Return all listings which describe a modern and attractive home.",
        diligence=120,
        min_keyword_hits=2,
    )
    agent_metrics = set_metrics(gold, result.answer or [])

    llm = SimulatedLLM(oracle=SemanticOracle(realestate_bundle.registry), seed=0)
    semantic = (
        Dataset.from_source(realestate_bundle.source())
        .sem_filter(re_mod.FILTER_MODERN)
        .run(QueryProcessorConfig(llm=llm, seed=0))
    )
    sem_gold = {
        f"listing_{record['listing_id']}.txt" for record in semantic.records
    }
    sem_metrics = set_metrics(gold, sem_gold)
    assert sem_metrics.f1 > agent_metrics.f1 + 0.1


def test_generic_policy_question_returns_snippet(legal_bundle):
    result, _llm = _run_generic(
        legal_bundle,
        "What is identity theft?",
        diligence=10,
    )
    assert isinstance(result.answer, dict)
    assert "snippet" in result.answer and "source" in result.answer


def test_generic_policy_bounded_reading(realestate_bundle):
    result, _llm = _run_generic(
        realestate_bundle,
        "Return all listings which mention a view of the water, city, or mountains.",
        diligence=5,
    )
    assert len(result.answer) <= 5  # cannot return more than it read
