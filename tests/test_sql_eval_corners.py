"""Corner cases of the shared structured-predicate/aggregation layer.

``repro.sem.structql`` is the single evaluator both the row-mode escape
hatch and the SQL pushdown path funnel through, so its NULL semantics,
validation errors, and empty-input aggregation behaviour are contracts:
any divergence here silently breaks the bit-identity guarantee between
pushed-down and row-at-a-time execution.
"""

from __future__ import annotations

import pytest

from repro.errors import PlanError
from repro.sem.structql import (
    aggregation_sql,
    compile_predicate,
    normalized_condition,
    predicate_holds,
    referenced_columns,
    run_aggregation,
    validate_aggregation,
)


# ---------------------------------------------------------------------------
# Predicate NULL semantics (three-valued logic)
# ---------------------------------------------------------------------------


class TestPredicateNullSemantics:
    def test_missing_field_reads_as_null(self):
        # NULL >= 2 is NULL, and NULL never satisfies WHERE.
        assert predicate_holds("priority >= 2", {}) is False

    def test_explicit_none_reads_as_null(self):
        assert predicate_holds("priority >= 2", {"priority": None}) is False

    def test_comparison_with_null_literal_is_never_true(self):
        assert predicate_holds("priority = NULL", {"priority": 3}) is False
        assert predicate_holds("priority <> NULL", {"priority": 3}) is False

    def test_is_null_matches_missing_and_none(self):
        assert predicate_holds("priority IS NULL", {}) is True
        assert predicate_holds("priority IS NULL", {"priority": None}) is True
        assert predicate_holds("priority IS NULL", {"priority": 0}) is False

    def test_is_not_null(self):
        assert predicate_holds("priority IS NOT NULL", {"priority": 0}) is True
        assert predicate_holds("priority IS NOT NULL", {}) is False

    def test_not_of_null_is_null(self):
        # NOT (NULL >= 2) is NULL, not TRUE — the row must still drop.
        assert predicate_holds("NOT (priority >= 2)", {}) is False

    def test_null_propagates_through_and_or(self):
        # NULL AND TRUE = NULL; NULL OR TRUE = TRUE.
        fields = {"a": 1}
        assert predicate_holds("b = 1 AND a = 1", fields) is False
        assert predicate_holds("b = 1 OR a = 1", fields) is True
        # NULL AND FALSE = FALSE either way: still dropped.
        assert predicate_holds("b = 1 AND a = 2", fields) is False

    def test_between_with_null_operand(self):
        assert predicate_holds("x BETWEEN 1 AND 5", {}) is False
        assert predicate_holds("x NOT BETWEEN 1 AND 5", {}) is False

    def test_in_list_with_null_operand(self):
        assert predicate_holds("x IN (1, 2)", {}) is False
        assert predicate_holds("x NOT IN (1, 2)", {}) is False

    def test_case_when_predicate(self):
        condition = (
            "CASE WHEN priority >= 3 THEN TRUE ELSE FALSE END"
        )
        assert predicate_holds(condition, {"priority": 4}) is True
        assert predicate_holds(condition, {"priority": 1}) is False


# ---------------------------------------------------------------------------
# Predicate validation
# ---------------------------------------------------------------------------


class TestPredicateValidation:
    def test_syntax_error(self):
        with pytest.raises(PlanError, match="invalid structured predicate"):
            compile_predicate("priority >=")

    def test_subquery_rejected(self):
        with pytest.raises(PlanError, match="subquery"):
            compile_predicate("priority IN (SELECT priority FROM t)")

    def test_aggregate_rejected(self):
        with pytest.raises(PlanError, match="aggregate"):
            compile_predicate("count(*) > 3")

    def test_qualified_column_rejected(self):
        with pytest.raises(PlanError, match="single scope"):
            compile_predicate("t.priority > 3")

    def test_referenced_columns_sorted_and_deduped(self):
        assert referenced_columns("b = 1 AND a = 2 OR b = 3") == ("a", "b")

    def test_normalized_condition_ignores_spelling(self):
        # Whitespace and keyword case are normalized away; identifiers are
        # case-sensitive (they name record fields).
        assert normalized_condition("priority>=2 and x=1") == normalized_condition(
            "priority >= 2 AND x = 1"
        )
        assert normalized_condition("priority >= 2") != normalized_condition(
            "priority > 2"
        )


# ---------------------------------------------------------------------------
# Structured aggregation
# ---------------------------------------------------------------------------


class TestAggregationValidation:
    def test_requires_aggregates(self):
        with pytest.raises(PlanError, match="at least one aggregate"):
            validate_aggregation((), ())

    def test_output_names_must_be_identifiers(self):
        with pytest.raises(PlanError, match="not an identifier"):
            validate_aggregation((), (("bad name", "count(*)"),))

    def test_output_names_must_be_unique(self):
        with pytest.raises(PlanError, match="duplicated"):
            validate_aggregation(("n",), (("n", "count(*)"),))

    def test_expression_must_parse(self):
        with pytest.raises(PlanError, match="invalid aggregate expression"):
            validate_aggregation((), (("n", "count(",),))

    def test_expression_must_aggregate(self):
        with pytest.raises(PlanError, match="no aggregate function"):
            validate_aggregation((), (("n", "priority + 1"),))


class TestAggregationExecution:
    def test_global_aggregate_over_empty_input(self):
        # SQL semantics: one row, COUNT 0, SUM/MIN/MAX NULL.
        rows = run_aggregation(
            [], (), (("n", "count(*)"), ("total", "sum(amount)"))
        )
        assert rows == [{"n": 0, "total": None}]

    def test_grouped_aggregate_over_empty_input(self):
        # GROUP BY over nothing yields no groups at all.
        assert run_aggregation([], ("dept",), (("n", "count(*)"),)) == []

    def test_sum_skips_nulls(self):
        rows = run_aggregation(
            [{"amount": 2}, {"amount": None}, {"amount": 3}],
            (),
            (("total", "sum(amount)"), ("n", "count(amount)")),
        )
        assert rows == [{"total": 5, "n": 2}]

    def test_group_by_with_missing_fields(self):
        # A record without the grouping field lands in the NULL group.
        rows = run_aggregation(
            [{"dept": "eng", "amount": 1}, {"amount": 2}],
            ("dept",),
            (("n", "count(*)"),),
        )
        assert {(row["dept"], row["n"]) for row in rows} == {("eng", 1), (None, 1)}

    def test_aggregation_sql_rendering(self):
        sql = aggregation_sql("t", ("dept",), (("n", "count(*)"),))
        assert sql == "SELECT dept, count(*) AS n FROM t GROUP BY dept"
