"""Tests for the search and compute operators."""

import pytest

from repro.core.operators import (
    LogicalAgentOp,
    compile_operator,
    compute,
    search,
)
from repro.core.runtime import AnalyticsRuntime
from repro.data.datasets import enron as en
from repro.data.datasets import kramabench as kb
from repro.sem.optimizer.policies import MinCost


@pytest.fixture
def legal_runtime(legal_bundle):
    runtime = AnalyticsRuntime.for_bundle(legal_bundle, seed=42)
    return runtime, runtime.make_context(legal_bundle)


def test_compute_ratio_flow_answers_correctly(legal_runtime, legal_bundle):
    runtime, context = legal_runtime
    result = compute(context, kb.QUERY_RATIO, runtime)
    truth = legal_bundle.ground_truth["ratio"]
    assert result.answer["ratio"] == pytest.approx(truth, rel=0.02)
    assert result.answer["source"] == legal_bundle.ground_truth["ground_truth_file"]
    assert result.cost_usd > 0 and result.time_s > 0


def test_compute_registers_output_context(legal_runtime):
    runtime, context = legal_runtime
    compute(context, kb.QUERY_RATIO, runtime)
    # programs (2) + the compute's own output context
    assert len(runtime.context_manager) >= 3


def test_compute_output_context_describes_result(legal_runtime):
    runtime, context = legal_runtime
    result = compute(context, kb.QUERY_RATIO, runtime)
    assert "Computed for:" in result.output_context.desc
    assert result.output_context.parent is context


def test_compute_filter_flow_returns_records(enron_bundle):
    runtime = AnalyticsRuntime.for_bundle(enron_bundle, seed=42)
    context = runtime.make_context(enron_bundle)
    result = compute(context, en.QUERY_RELEVANT, runtime)
    assert isinstance(result.answer, list)
    assert 30 <= len(result.answer) <= 45
    # Output context narrowed to the returned records.
    assert len(result.output_context) == len(result.answer)


def test_compute_generic_flow_produces_notes(legal_runtime):
    runtime, context = legal_runtime
    result = compute(context, "Tell me about robocall complaint trends.", runtime)
    assert isinstance(result.answer, dict)
    assert "notes" in result.answer


def test_search_enriches_description(legal_runtime):
    runtime, context = legal_runtime
    result = search(context, "information on identity theft reports", runtime)
    assert result.output_context.desc != context.desc
    assert "Search for:" in result.output_context.desc
    assert result.findings.get("relevant_items")
    assert all(
        "identity" in key for key in result.findings["relevant_items"]
    )


def test_search_then_compute_chain(legal_runtime, legal_bundle):
    runtime, context = legal_runtime
    enriched = search(context, "identity theft statistics", runtime).output_context
    result = compute(enriched, kb.QUERY_RATIO, runtime)
    truth = legal_bundle.ground_truth["ratio"]
    assert result.answer["ratio"] == pytest.approx(truth, rel=0.02)


def test_compile_operator_model_selection(legal_runtime):
    runtime, _context = legal_runtime
    logical = LogicalAgentOp("compute", "instruction", "ctx")
    compiled = compile_operator(logical, runtime, max_steps=5)
    assert compiled.agent_model == runtime.champion_model

    runtime.policy = MinCost()
    compiled_cheap = compile_operator(logical, runtime, max_steps=5)
    assert compiled_cheap.agent_model == runtime.cheapest_model()


def test_compute_deterministic_per_seed(legal_bundle):
    def run():
        runtime = AnalyticsRuntime.for_bundle(legal_bundle, seed=1234)
        context = runtime.make_context(legal_bundle)
        result = compute(context, kb.QUERY_RATIO, runtime)
        return result.answer, round(result.cost_usd, 8)

    assert run() == run()
