"""Smoke tests: every shipped example must run end to end."""

import importlib.util
import io
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

EXAMPLES = [
    "agent_with_sql",
    "quickstart",
    "kramabench_legal",
    "enron_filter",
    "context_reuse",
    "sql_materialization",
]


def _run_example(name: str) -> str:
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    buffer = io.StringIO()
    try:
        spec.loader.exec_module(module)
        with redirect_stdout(buffer):
            module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return buffer.getvalue()


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name):
    output = _run_example(name)
    assert len(output) > 100  # produced a real report


def test_quickstart_materializes_sql():
    output = _run_example("quickstart")
    assert "SQL over the materialized table" in output


def test_kramabench_example_gets_right_answer():
    output = _run_example("kramabench_legal")
    assert "13.16" in output
    assert "Compute agent trace" in output


def test_enron_example_shows_improvement():
    output = _run_example("enron_filter")
    assert "F1 improvement" in output


def test_context_reuse_example_shows_cache_hit():
    output = _run_example("context_reuse")
    assert "cache" in output.lower()
