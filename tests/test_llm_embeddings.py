"""Tests for deterministic embeddings."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.llm.embeddings import (
    EmbeddingModel,
    cosine_similarity,
    top_k_similar,
)


@pytest.fixture(scope="module")
def model():
    return EmbeddingModel()


def test_embedding_is_unit_norm(model):
    vector = model.embed("identity theft reports in 2024")
    assert np.linalg.norm(vector) == pytest.approx(1.0, abs=1e-5)


def test_embedding_deterministic(model):
    a = model.embed("hello world data")
    b = model.embed("hello world data")
    assert np.array_equal(a, b)


def test_empty_text_is_zero_vector(model):
    assert np.linalg.norm(model.embed("")) == 0.0


def test_stopword_only_text_is_zero_vector(model):
    assert np.linalg.norm(model.embed("the a an of and")) == 0.0


def test_similar_texts_closer_than_dissimilar(model):
    a = model.embed("identity theft report statistics")
    b = model.embed("statistics on identity theft reports")
    c = model.embed("weekend birdwatching trip photos")
    assert cosine_similarity(a, b) > cosine_similarity(a, c)


def test_cosine_zero_vector_is_zero(model):
    a = model.embed("identity theft")
    zero = np.zeros_like(a)
    assert cosine_similarity(a, zero) == 0.0


def test_cosine_self_similarity_is_one(model):
    a = model.embed("semantic operators")
    assert cosine_similarity(a, a) == pytest.approx(1.0, abs=1e-5)


def test_embed_many_shape(model):
    matrix = model.embed_many(["a b", "c d", "e f"])
    assert matrix.shape == (3, model.dim)


def test_embed_many_empty(model):
    assert model.embed_many([]).shape == (0, model.dim)


def test_top_k_similar_orders_by_similarity(model):
    corpus = ["identity theft statistics", "fraud reports", "lunch plans friday"]
    matrix = model.embed_many(corpus)
    query = model.embed("statistics about identity theft")
    hits = top_k_similar(query, matrix, k=3)
    assert hits[0][0] == 0
    scores = [score for _, score in hits]
    assert scores == sorted(scores, reverse=True)


def test_top_k_caps_at_matrix_size(model):
    matrix = model.embed_many(["a b c"])
    hits = top_k_similar(model.embed("a b c"), matrix, k=10)
    assert len(hits) == 1


def test_top_k_zero_query_returns_empty(model):
    matrix = model.embed_many(["a b c"])
    assert top_k_similar(np.zeros(model.dim, dtype=np.float32), matrix, 3) == []


def test_dim_validation():
    with pytest.raises(ValueError):
        EmbeddingModel(dim=4)


@given(st.text(max_size=200))
def test_norm_at_most_one(text):
    vector = EmbeddingModel().embed(text)
    assert np.linalg.norm(vector) <= 1.0 + 1e-5


@given(st.text(min_size=1, max_size=100), st.text(min_size=1, max_size=100))
def test_cosine_bounded(a, b):
    model = EmbeddingModel()
    similarity = cosine_similarity(model.embed(a), model.embed(b))
    assert -1.0 - 1e-6 <= similarity <= 1.0 + 1e-6
