"""Tests for Context maintenance (cache invalidation, §2.4)."""

from repro.core.context import Context
from repro.core.context_manager import ContextManager
from repro.data.records import DataRecord
from repro.data.schemas import Field, Schema
from repro.llm.simulated import SimulatedLLM

SCHEMA = Schema([Field("name", str)])


def _context(name):
    return Context([DataRecord({"name": "r"})], SCHEMA, desc=f"data in {name}", name=name)


def test_invalidate_evicts_descendants():
    manager = ContextManager(SimulatedLLM(seed=0))
    base = _context("base")
    derived = base.derived("materialized view", name="view-1")
    grandchild = derived.derived("narrower view", name="view-2")
    unrelated = _context("other")

    manager.register(derived, "first query")
    manager.register(grandchild, "second query")
    manager.register(unrelated, "third query")

    evicted = manager.invalidate(base)
    assert evicted == 2
    assert len(manager) == 1
    assert manager.entries()[0].context is unrelated


def test_invalidate_by_name():
    manager = ContextManager(SimulatedLLM(seed=0))
    base = _context("lake")
    manager.register(base.derived("view"), "query")
    assert manager.invalidate("lake") == 1
    assert len(manager) == 0


def test_invalidate_cascades_to_materialization_store():
    from repro.data.records import DataRecord as Record
    from repro.sem.materialize import MaterializationStore

    manager = ContextManager(SimulatedLLM(seed=0))
    manager.materialization_store = store = MaterializationStore()
    base = _context("lake")
    derived = base.derived("materialized view", name="view-1")
    manager.register(derived, "first query")

    # Sub-plan prefixes materialized from the base, the derived view, and
    # an unrelated source.
    for source in ("lake", "view-1", "other"):
        store.put(
            f"fp-{source}",
            [Record({"name": "r"}, uid="u0")],
            ("u0",),
            source,
            cost_usd=0.0,
            time_s=0.0,
        )

    assert manager.invalidate(base) == 1
    assert store.get("fp-lake") is None
    assert store.get("fp-view-1") is None
    assert store.get("fp-other") is not None


def test_invalidate_by_name_cascades_without_cached_entries():
    from repro.data.records import DataRecord as Record
    from repro.sem.materialize import MaterializationStore

    manager = ContextManager(SimulatedLLM(seed=0))
    manager.materialization_store = store = MaterializationStore()
    store.put(
        "fp", [Record({"name": "r"}, uid="u0")], ("u0",), "lake",
        cost_usd=0.0, time_s=0.0,
    )
    # No ContextManager entry derives from "lake", but materializations
    # keyed on it are still stale once its records change.
    assert manager.invalidate("lake") == 0
    assert len(store) == 0


def test_invalidate_unknown_base_is_noop():
    manager = ContextManager(SimulatedLLM(seed=0))
    manager.register(_context("a"), "query")
    assert manager.invalidate("nonexistent") == 0
    assert len(manager) == 1


def test_invalidated_entry_not_reused(legal_bundle):
    from repro.core.program_tool import build_program_tool
    from repro.core.runtime import AnalyticsRuntime

    first = (
        "Find the files which report national identity theft statistics "
        "for the year 2001 and extract the number of identity theft "
        "reports in the year 2001."
    )
    second = first.replace("2001", "2024")

    runtime = AnalyticsRuntime.for_bundle(legal_bundle, seed=9, reuse_contexts=True)
    context = runtime.make_context(legal_bundle)
    tool = build_program_tool(context, runtime)
    tool(first)
    runtime.context_manager.invalidate(context)

    cost_mark = runtime.usage().cost_usd
    tool(second)
    marginal = runtime.usage().cost_usd - cost_mark
    # Without a live cache entry the second query pays the full-scan price.
    assert marginal > 0.05
