"""Tests for the trial harness and report rendering."""

import pytest

from repro.bench.harness import TrialOutcome, render_report, run_trials, summarize


def _system(seed: int) -> TrialOutcome:
    return TrialOutcome(
        quality={"f1": 0.9 + (seed % 3) * 0.01},
        cost_usd=1.0,
        time_s=10.0,
    )


def test_run_trials_averages():
    summary = run_trials("sys", _system, n_trials=3, base_seed=0)
    assert summary.n_trials == 3
    assert summary.cost_usd == pytest.approx(1.0)
    assert 0.9 <= summary.quality["f1"] <= 0.93


def test_run_trials_deterministic_seeds():
    a = run_trials("sys", _system, n_trials=3, base_seed=7)
    b = run_trials("sys", _system, n_trials=3, base_seed=7)
    assert a.quality == b.quality


def test_summarize_rejects_empty():
    with pytest.raises(ValueError):
        summarize("x", [])


def test_render_report_with_paper_rows():
    summary = summarize(
        "SysA", [TrialOutcome(quality={"f1": 0.5}, cost_usd=2.0, time_s=30.0)]
    )
    report = render_report(
        "Title",
        [summary],
        metric_columns=[("F1", "f1", lambda v: f"{v:.2f}")],
        paper_rows={"SysA": ["0.51", "2.10", "31.0"]},
    )
    assert "Title" in report
    assert "SysA" in report
    assert "(paper)" in report
    assert "0.51" in report


def test_render_report_without_paper_rows():
    summary = summarize(
        "SysB", [TrialOutcome(quality={"err": 1.0}, cost_usd=0.5, time_s=5.0)]
    )
    report = render_report(
        "T", [summary], metric_columns=[("Err", "err", lambda v: f"{v:.1f}%")]
    )
    assert "(paper)" not in report
    assert "SysB" in report
