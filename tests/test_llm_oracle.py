"""Tests for the intent registry and semantic oracle."""

from repro.data.records import DataRecord
from repro.llm.oracle import DIFFICULTY_PREFIX, IntentRegistry, SemanticOracle


def _record(annotations=None, text="some record text"):
    return DataRecord({"body": text}, annotations=annotations or {})


def test_register_and_resolve_exact():
    registry = IntentRegistry()
    registry.register("x.mentions", ["identity", "theft"])
    intent = registry.resolve("Does this mention identity theft?")
    assert intent is not None and intent.key == "x.mentions"


def test_resolve_below_threshold_returns_none():
    registry = IntentRegistry()
    registry.register("x.a", ["alpha", "beta", "gamma", "delta"])
    assert registry.resolve("only alpha here") is None


def test_resolution_prefers_more_specific_on_tie():
    registry = IntentRegistry()
    registry.register("x.short", ["identity", "theft"])
    registry.register("x.long", ["identity", "theft", "2001", "2024"])
    intent = registry.resolve("identity theft reports for 2001 and 2024")
    assert intent.key == "x.long"


def test_resolution_prefers_higher_score():
    registry = IntentRegistry()
    registry.register("x.partial", ["identity", "theft", "ratio"])
    registry.register("x.full", ["identity", "theft"])
    intent = registry.resolve("identity theft reports")  # no "ratio"
    assert intent.key == "x.full"


def test_merge_registries():
    a, b = IntentRegistry(), IntentRegistry()
    a.register("k.a", ["alpha"])
    b.register("k.b", ["beta"])
    a.merge(b)
    assert set(a.keys()) == {"k.a", "k.b"}


def test_judge_filter_resolved_truth():
    registry = IntentRegistry()
    registry.register("x.flag", ["special", "flag"])
    oracle = SemanticOracle(registry)
    record = _record({"x.flag": True})
    result = oracle.judge_filter("has the special flag", record)
    assert result.resolved and result.truth is True


def test_judge_filter_difficulty_read_from_annotation():
    registry = IntentRegistry()
    registry.register("x.flag", ["special", "flag"])
    oracle = SemanticOracle(registry)
    record = _record({"x.flag": False, DIFFICULTY_PREFIX + "x.flag": 0.9})
    result = oracle.judge_filter("has the special flag", record)
    assert result.difficulty == 0.9


def test_judge_filter_difficulty_clamped():
    registry = IntentRegistry()
    registry.register("x.flag", ["special", "flag"])
    oracle = SemanticOracle(registry)
    record = _record({"x.flag": True, DIFFICULTY_PREFIX + "x.flag": 7.0})
    assert oracle.judge_filter("special flag", record).difficulty == 1.0


def test_judge_filter_unresolved_uses_lexical_heuristic():
    oracle = SemanticOracle(IntentRegistry())
    overlapping = _record(text="the quarterly merger discussion happened")
    result = oracle.judge_filter("quarterly merger discussion", overlapping)
    assert not result.resolved
    assert result.truth is True  # heavy token overlap

    unrelated = _record(text="lunch plans for friday")
    result = oracle.judge_filter("quarterly merger discussion", unrelated)
    assert result.truth is False


def test_extract_value_resolved():
    registry = IntentRegistry()
    registry.register("x.count", ["number", "widgets"])
    oracle = SemanticOracle(registry)
    record = _record({"x.count": 42})
    result = oracle.extract_value("extract the number of widgets", record)
    assert result.resolved and result.truth == 42


def test_extract_value_unresolved_returns_none():
    oracle = SemanticOracle(IntentRegistry())
    result = oracle.extract_value("extract the number of widgets", _record())
    assert not result.resolved and result.truth is None


def test_intent_missing_annotation_falls_back():
    registry = IntentRegistry()
    registry.register("x.flag", ["special", "flag"])
    oracle = SemanticOracle(registry)
    # Intent resolves, but this record carries no annotation for it.
    result = oracle.judge_filter("special flag", _record({}))
    assert not result.resolved
