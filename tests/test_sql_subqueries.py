"""Tests for (uncorrelated) subqueries."""

import pytest

from repro.errors import SQLExecutionError, SQLPlanError
from repro.sql import Database


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE sales (region TEXT, amount INTEGER)")
    database.execute(
        "INSERT INTO sales VALUES ('east', 100), ('east', 300), "
        "('west', 200), ('north', 50)"
    )
    database.execute("CREATE TABLE big_regions (region TEXT)")
    database.execute("INSERT INTO big_regions VALUES ('east'), ('west')")
    return database


def test_scalar_subquery_in_select(db):
    value = db.execute("SELECT (SELECT MAX(amount) FROM sales) AS top").scalar()
    assert value == 300


def test_scalar_subquery_in_where(db):
    rows = db.query(
        "SELECT region, amount FROM sales "
        "WHERE amount > (SELECT AVG(amount) FROM sales)"
    )
    assert {row["region"] for row in rows} == {"east", "west"}


def test_scalar_subquery_in_arithmetic(db):
    rows = db.query(
        "SELECT region, amount * 100 / (SELECT SUM(amount) FROM sales) AS share "
        "FROM sales WHERE region = 'west'"
    )
    assert rows[0]["share"] == pytest.approx(200 * 100 / 650)


def test_in_subquery(db):
    rows = db.query(
        "SELECT DISTINCT region FROM sales "
        "WHERE region IN (SELECT region FROM big_regions) ORDER BY region"
    )
    assert [row["region"] for row in rows] == ["east", "west"]


def test_not_in_subquery(db):
    rows = db.query(
        "SELECT DISTINCT region FROM sales "
        "WHERE region NOT IN (SELECT region FROM big_regions)"
    )
    assert [row["region"] for row in rows] == ["north"]


def test_empty_scalar_subquery_is_null(db):
    value = db.execute(
        "SELECT (SELECT amount FROM sales WHERE region = 'missing') AS v"
    ).scalar()
    assert value is None


def test_multirow_scalar_subquery_rejected(db):
    with pytest.raises(SQLExecutionError):
        db.query("SELECT (SELECT amount FROM sales) AS v")


def test_multicolumn_subquery_rejected(db):
    with pytest.raises(SQLPlanError):
        db.query("SELECT * FROM sales WHERE amount > (SELECT region, amount FROM sales)")


def test_nested_subqueries(db):
    value = db.execute(
        "SELECT (SELECT MAX(amount) FROM sales WHERE amount < "
        "(SELECT MAX(amount) FROM sales)) AS second_highest"
    ).scalar()
    assert value == 200


def test_paper_parity_pz_module(legal_bundle):
    import repro.pz as pz
    from repro.data.datasets.kramabench import QUERY_RATIO

    runtime = pz.AnalyticsRuntime.for_bundle(legal_bundle, seed=4)
    ctx = pz.Context(
        legal_bundle.records(), legal_bundle.schema, desc=legal_bundle.description
    )
    found = pz.search(ctx, "information on identity thefts", runtime=runtime)
    out = pz.compute(found.output_context, QUERY_RATIO, runtime=runtime)
    assert out.answer["ratio"] == pytest.approx(
        legal_bundle.ground_truth["ratio"], rel=0.02
    )
