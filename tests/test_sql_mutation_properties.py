"""Property-based tests for UPDATE/DELETE consistency."""

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sql import Database

pytestmark = pytest.mark.slow

rows_strategy = st.lists(
    st.integers(min_value=-50, max_value=50), min_size=0, max_size=20
)


def _load(values):
    db = Database()
    db.execute("CREATE TABLE t (v INTEGER)")
    for value in values:
        db.execute(f"INSERT INTO t VALUES ({value})")
    return db


@given(rows_strategy, st.integers(min_value=-50, max_value=50))
@settings(max_examples=40, deadline=None)
def test_delete_partitions_table(values, threshold):
    db = _load(values)
    deleted = db.execute(f"DELETE FROM t WHERE v > {threshold}").rows[0][0]
    remaining = db.execute("SELECT COUNT(*) FROM t").scalar()
    assert deleted + remaining == len(values)
    assert deleted == sum(1 for value in values if value > threshold)


@given(rows_strategy, st.integers(min_value=-50, max_value=50))
@settings(max_examples=40, deadline=None)
def test_update_is_reflected_in_selects(values, threshold):
    db = _load(values)
    db.execute(f"UPDATE t SET v = 999 WHERE v <= {threshold}")
    touched = db.execute("SELECT COUNT(*) FROM t WHERE v = 999").scalar()
    expected = sum(1 for value in values if value <= threshold)
    untouched_999 = sum(1 for value in values if value == 999)
    assert touched == expected + untouched_999
    assert db.execute("SELECT COUNT(*) FROM t").scalar() == len(values)


@given(rows_strategy)
@settings(max_examples=30, deadline=None)
def test_update_without_where_touches_all(values):
    db = _load(values)
    updated = db.execute("UPDATE t SET v = v + 1").rows[0][0]
    assert updated == len(values)
    total = db.execute("SELECT SUM(v) FROM t").scalar()
    expected = sum(values) + len(values) if values else None
    assert total == expected


@given(rows_strategy)
@settings(max_examples=30, deadline=None)
def test_delete_all_then_empty(values):
    db = _load(values)
    db.execute("DELETE FROM t")
    assert db.execute("SELECT COUNT(*) FROM t").scalar() == 0
