"""Property-based tests for the SQL engine (hypothesis).

These check engine invariants against a reference implementation in plain
Python over randomly generated tables.
"""

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sql import Database

pytestmark = pytest.mark.slow

rows_strategy = st.lists(
    st.tuples(
        st.integers(min_value=-100, max_value=100),
        st.sampled_from(["red", "green", "blue"]),
    ),
    min_size=0,
    max_size=25,
)


def _load(rows):
    db = Database()
    db.execute("CREATE TABLE t (v INTEGER, color TEXT)")
    for value, color in rows:
        db.execute(f"INSERT INTO t VALUES ({value}, '{color}')")
    return db


@given(rows_strategy)
@settings(max_examples=40, deadline=None)
def test_count_matches_python(rows):
    db = _load(rows)
    assert db.execute("SELECT COUNT(*) FROM t").scalar() == len(rows)


@given(rows_strategy, st.integers(min_value=-100, max_value=100))
@settings(max_examples=40, deadline=None)
def test_where_matches_python_filter(rows, threshold):
    db = _load(rows)
    got = db.execute(f"SELECT COUNT(*) FROM t WHERE v > {threshold}").scalar()
    assert got == sum(1 for value, _ in rows if value > threshold)


@given(rows_strategy)
@settings(max_examples=40, deadline=None)
def test_sum_matches_python(rows):
    db = _load(rows)
    expected = sum(value for value, _ in rows) if rows else None
    assert db.execute("SELECT SUM(v) FROM t").scalar() == expected


@given(rows_strategy)
@settings(max_examples=40, deadline=None)
def test_group_counts_partition_total(rows):
    db = _load(rows)
    groups = db.query("SELECT color, COUNT(*) AS n FROM t GROUP BY color")
    assert sum(row["n"] for row in groups) == len(rows)
    assert len(groups) == len({color for _, color in rows})


@given(rows_strategy)
@settings(max_examples=40, deadline=None)
def test_order_by_sorts(rows):
    db = _load(rows)
    values = [row["v"] for row in db.query("SELECT v FROM t ORDER BY v")]
    assert values == sorted(value for value, _ in rows)


@given(rows_strategy, st.integers(min_value=0, max_value=30))
@settings(max_examples=40, deadline=None)
def test_limit_bounds_output(rows, limit):
    db = _load(rows)
    got = db.query(f"SELECT v FROM t LIMIT {limit}")
    assert len(got) == min(limit, len(rows))


@given(rows_strategy)
@settings(max_examples=40, deadline=None)
def test_distinct_removes_duplicates(rows):
    db = _load(rows)
    colors = [row["color"] for row in db.query("SELECT DISTINCT color FROM t")]
    assert sorted(colors) == sorted({color for _, color in rows})


@given(rows_strategy)
@settings(max_examples=30, deadline=None)
def test_min_max_consistent(rows):
    db = _load(rows)
    low = db.execute("SELECT MIN(v) FROM t").scalar()
    high = db.execute("SELECT MAX(v) FROM t").scalar()
    if rows:
        assert low == min(value for value, _ in rows)
        assert high == max(value for value, _ in rows)
    else:
        assert low is None and high is None
