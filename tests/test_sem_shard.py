"""Sharded execution: partitioners, exchange planning, and bit-identity.

The tentpole contract: executing a plan across N simulated workers may
change *where* and *when* work runs — scatter partitions, shuffles,
broadcasts, per-shard merges — but never the records, their order, or
their uids.  ``shards=1`` must be an exact no-op: the sharding machinery
is never constructed and the engine behaves byte-identically to the
unsharded path in records, cost, time, and spans.
"""

from __future__ import annotations

import inspect

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.runtime import AnalyticsRuntime
from repro.data.records import DataRecord, reset_uid_counter
from repro.data.schemas import Field, Schema
from repro.errors import ConfigurationError, OptimizationError
from repro.llm.oracle import SemanticOracle
from repro.llm.simulated import SimulatedLLM
from repro.obs import Tracer, validate_spans
from repro.qa.corpus import CorpusSpec, build_corpus, instruction_for
from repro.sem import physical as P
from repro.sem.config import QueryProcessorConfig
from repro.sem.dataset import Dataset
from repro.sem.materialize import MaterializationStore
from repro.sem.shard import (
    PARTITIONERS,
    ShardPlan,
    ShardSegment,
    exchange_footer,
    key_shard,
    keys_match,
    partition_records,
    plan_shards,
    shard_of,
)
from repro.utils.hashing import stable_hash


@pytest.fixture(scope="module")
def qa_bundle():
    return build_corpus(CorpusSpec(seed=13, n_records=24))


def _config(bundle, *, seed: int = 13, **kwargs) -> QueryProcessorConfig:
    llm = SimulatedLLM(oracle=SemanticOracle(bundle.registry), seed=seed)
    kwargs.setdefault("optimize", False)
    return QueryProcessorConfig(llm=llm, seed=seed, **kwargs)


def _normalized(result):
    return [(r.uid, tuple(sorted(r.fields.items()))) for r in result.records]


def _filter_map(bundle) -> Dataset:
    return (
        Dataset.from_source(bundle.source())
        .where("priority >= 1")
        .sem_filter(instruction_for("qa.flag_urgent"))
        .sem_map(
            Field("customer", str, "customer name"),
            instruction_for("qa.customer"),
        )
    )


def _records(n, prefix="u"):
    return [
        DataRecord({"text": f"text number {i}"}, uid=f"{prefix}{i}")
        for i in range(n)
    ]


SCHEMA = Schema([Field("text", str)])


# ---------------------------------------------------------------------------
# Partitioners (unit level)
# ---------------------------------------------------------------------------


class TestPartitioners:
    def test_hash_keys_on_uid_only(self):
        # Position must not matter: hash is the strategy that stays
        # stable when the source grows and positions shift.
        assert shard_of("u1", 0, 10, 4, "hash") == shard_of("u1", 9, 99, 4, "hash")

    def test_hash_matches_stable_hash(self):
        assert shard_of("u7", 0, 1, 5, "hash") == stable_hash("shard", "u7") % 5

    def test_range_cuts_contiguous_chunks(self):
        assignments = [shard_of(f"u{i}", i, 8, 2, "range") for i in range(8)]
        assert assignments == [0, 0, 0, 0, 1, 1, 1, 1]

    def test_round_robin_deals_cyclically(self):
        assignments = [shard_of(f"u{i}", i, 6, 3, "round_robin") for i in range(6)]
        assert assignments == [0, 1, 2, 0, 1, 2]

    def test_unknown_partitioner_raises(self):
        with pytest.raises(OptimizationError, match="unknown partitioner"):
            shard_of("u0", 0, 1, 2, "psychic")

    def test_partition_preserves_multiset_and_order(self):
        items = list(enumerate(_records(10)))
        for partitioner in PARTITIONERS:
            shards = partition_records(items, 3, partitioner)
            assert len(shards) == 3
            flattened = sorted(
                (pos, rec) for shard in shards for pos, rec in shard
            )
            assert flattened == items
            for shard in shards:
                positions = [pos for pos, _ in shard]
                assert positions == sorted(positions)

    def test_partition_empty_input_yields_empty_shards(self):
        assert partition_records([], 4, "hash") == [[], [], [], []]

    def test_range_keys_on_local_index_despite_position_gaps(self):
        # An upstream filter left only even positions; range must still
        # split the *surviving* items in half, not by stale position.
        records = _records(8)
        items = [(i * 2, records[i]) for i in range(8)]
        shards = partition_records(items, 2, "range")
        assert [len(shard) for shard in shards] == [4, 4]

    def test_more_shards_than_records(self):
        items = list(enumerate(_records(3)))
        shards = partition_records(items, 8, "round_robin")
        assert [len(shard) for shard in shards] == [1, 1, 1, 0, 0, 0, 0, 0]

    def test_all_records_can_land_on_one_shard(self):
        # Craft uids that all hash to shard 0: empty shards downstream
        # must be harmless.
        picked = [uid for uid in (f"u{i}" for i in range(200))
                  if stable_hash("shard", uid) % 4 == 0][:5]
        items = list(enumerate(
            DataRecord({"text": "t"}, uid=uid) for uid in picked
        ))
        shards = partition_records(items, 4, "hash")
        assert [len(shard) for shard in shards] == [5, 0, 0, 0]


class TestShuffleKeys:
    def test_key_shard_is_deterministic(self):
        assert key_shard("billing", 4) == key_shard("billing", 4)

    def test_null_key_routes_to_shard_zero(self):
        assert key_shard(None, 7) == 0

    def test_keys_match_follows_three_valued_semantics(self):
        # Mirrors structql: NULL = NULL is unknown, and unknown never
        # joins — co-locating NULLs on shard 0 must not create matches.
        assert keys_match("a", "a")
        assert not keys_match("a", "b")
        assert not keys_match(None, "a")
        assert not keys_match("a", None)
        assert not keys_match(None, None)


# ---------------------------------------------------------------------------
# The sharding pass
# ---------------------------------------------------------------------------


class _StubOp:
    def __init__(self, exchange):
        self.exchange = exchange

    def label(self):
        return f"Stub({self.exchange})"


def _plan(*exchanges, n_shards=4, partitioner="hash"):
    return plan_shards(
        [_StubOp(x) for x in exchanges], n_shards, partitioner
    )


class TestPlanShards:
    def test_scatter_run_groups_into_one_segment(self):
        plan = _plan("source", "scatter", "scatter", "scatter")
        assert [s.kind for s in plan.segments] == ["global", "scatter"]
        assert (plan.segments[1].start, plan.segments[1].end) == (1, 4)
        assert plan.segments[1].finisher is None

    def test_trailing_merge_becomes_finisher(self):
        plan = _plan("source", "scatter", "merge")
        scatter = plan.segments[1]
        assert scatter.kind == "scatter" and scatter.finisher == 2
        assert scatter.end == 3

    def test_bare_merge_gets_its_own_scatter_segment(self):
        plan = _plan("source", "merge")
        assert plan.segments[1].kind == "scatter"
        assert plan.segments[1].finisher == 1

    def test_source_and_gather_are_global(self):
        plan = _plan("source", "scatter", "gather")
        assert [s.kind for s in plan.segments] == ["global", "scatter", "global"]
        assert plan.segments[2].strategy == "gather"

    def test_shuffle_records_broadcast_as_rejected_alternative(self):
        plan = _plan("source", "shuffle")
        segment = plan.segments[1]
        assert segment.kind == "shuffle" and segment.alternative == "broadcast"

    def test_broadcast_records_shuffle_as_rejected_alternative(self):
        plan = _plan("source", "broadcast")
        segment = plan.segments[1]
        assert segment.kind == "broadcast" and segment.alternative == "shuffle"

    def test_undeclared_exchange_is_rejected(self):
        with pytest.raises(OptimizationError, match="declares no exchange"):
            _plan("source", None)

    def test_unknown_exchange_value_is_rejected(self):
        with pytest.raises(OptimizationError, match="unknown\\s+exchange"):
            _plan("source", "teleport")

    def test_unknown_partitioner_is_rejected(self):
        with pytest.raises(OptimizationError, match="unknown partitioner"):
            _plan("source", partitioner="psychic")

    def test_zero_shards_is_rejected(self):
        with pytest.raises(OptimizationError, match="n_shards"):
            _plan("source", n_shards=0)

    def test_describe_lists_segments(self):
        plan = _plan("source", "scatter", "shuffle")
        text = plan.describe()
        assert "shards=4" in text and "scatter[1:2]" in text and "shuffle[2:3]" in text

    def test_every_concrete_physical_operator_declares_exchange(self):
        # New operators must opt into sharding explicitly: a missing
        # declaration fails plan_shards, and this guard catches it at
        # unit-test time rather than in the first sharded query.
        valid = {"source", "gather", "scatter", "merge", "shuffle", "broadcast"}
        missing = [
            name
            for name, cls in vars(P).items()
            if inspect.isclass(cls)
            and issubclass(cls, P.PhysicalOperator)
            and not inspect.isabstract(cls)
            and cls.exchange not in valid
        ]
        assert not missing, f"operators without exchange declarations: {missing}"


class TestConfigValidation:
    def test_rejects_zero_shards(self):
        with pytest.raises(ConfigurationError, match="shards"):
            QueryProcessorConfig(llm=SimulatedLLM(), shards=0)

    def test_rejects_unknown_partitioner(self):
        with pytest.raises(ConfigurationError, match="partitioner"):
            QueryProcessorConfig(llm=SimulatedLLM(), partitioner="psychic")


# ---------------------------------------------------------------------------
# End-to-end bit-identity
# ---------------------------------------------------------------------------


class TestBitIdentity:
    def test_filter_map_identical_across_shard_counts(self, qa_bundle):
        baseline = _filter_map(qa_bundle).run(_config(qa_bundle))
        expected = _normalized(baseline)
        assert expected  # the plan keeps some records
        for shards in (2, 3, 4, 8):
            result = _filter_map(qa_bundle).run(_config(qa_bundle, shards=shards))
            assert _normalized(result) == expected, f"{shards} shards diverged"
            assert result.total_cost_usd == pytest.approx(baseline.total_cost_usd)

    def test_partitioner_choice_never_changes_records(self, qa_bundle):
        expected = _normalized(_filter_map(qa_bundle).run(_config(qa_bundle)))
        for partitioner in PARTITIONERS:
            result = _filter_map(qa_bundle).run(
                _config(qa_bundle, shards=4, partitioner=partitioner)
            )
            assert _normalized(result) == expected, partitioner

    def test_four_shards_finish_faster(self, qa_bundle):
        base = _filter_map(qa_bundle).run(_config(qa_bundle))
        sharded = _filter_map(qa_bundle).run(_config(qa_bundle, shards=4))
        assert sharded.total_time_s < base.total_time_s

    def test_groupby_shuffle_identical(self, qa_bundle):
        def plan():
            return Dataset.from_source(qa_bundle.source()).sem_groupby(
                instruction_for("qa.department"),
                ["billing", "engineering", "sales"],
            )

        expected = _normalized(plan().run(_config(qa_bundle)))
        result = plan().run(_config(qa_bundle, shards=4))
        assert _normalized(result) == expected
        assert len(result.records) > 1  # groups actually formed

    def test_nested_join_broadcast_identical(self, qa_bundle):
        def plan():
            left = Dataset.from_source(qa_bundle.source()).where("priority >= 4")
            right = Dataset.from_source(qa_bundle.source()).where("priority <= 0")
            return left.sem_join(right, instruction_for("qa.same_customer"))

        expected = _normalized(plan().run(_config(qa_bundle)))
        result = plan().run(_config(qa_bundle, shards=3))
        assert _normalized(result) == expected

    def test_blocked_join_broadcast_identical(self, qa_bundle):
        def plan():
            left = Dataset.from_source(qa_bundle.source()).where("priority >= 4")
            right = Dataset.from_source(qa_bundle.source()).where("priority <= 0")
            return left.sem_join(right, instruction_for("qa.same_customer"))

        expected = _normalized(plan().run(_config(qa_bundle, join_method="blocked")))
        result = plan().run(
            _config(qa_bundle, join_method="blocked", shards=4)
        )
        assert _normalized(result) == expected

    def test_topk_merge_identical(self, qa_bundle):
        def plan():
            return (
                Dataset.from_source(qa_bundle.source())
                .sem_filter(instruction_for("qa.flag_urgent"))
                .sem_topk("tickets about billing problems", k=3)
            )

        expected = _normalized(plan().run(_config(qa_bundle)))
        assert len(expected) == 3
        for shards in (2, 4, 8):
            result = plan().run(_config(qa_bundle, shards=shards))
            assert _normalized(result) == expected, f"{shards} shards"

    def test_limit_merge_identical_records(self, qa_bundle):
        # Records (and order) must match; cost may legally differ — each
        # shard over-fetches up to its own limit before the global
        # truncation (distributed limit-pushdown overfetch).
        def plan():
            return (
                Dataset.from_source(qa_bundle.source())
                .sem_filter(instruction_for("qa.flag_urgent"))
                .limit(4)
            )

        expected = _normalized(plan().run(_config(qa_bundle)))
        result = plan().run(_config(qa_bundle, shards=4))
        assert _normalized(result) == expected

    def test_agg_runs_global_and_identical(self, qa_bundle):
        def plan():
            return (
                Dataset.from_source(qa_bundle.source())
                .where("priority >= 3")
                .sem_agg("Summarize the overall customer mood.")
            )

        expected = _normalized(plan().run(_config(qa_bundle)))
        result, report = plan().run_with_report(_config(qa_bundle, shards=4))
        assert _normalized(result) == expected
        assert report.shard_plan.segments[-1].kind == "global"

    def test_retrieve_gather_identical(self, qa_bundle):
        def plan():
            return (
                Dataset.from_source(qa_bundle.source())
                .retrieve("urgent billing tickets", k=8)
                .sem_filter(instruction_for("qa.flag_urgent"))
            )

        expected = _normalized(plan().run(_config(qa_bundle)))
        result = plan().run(_config(qa_bundle, shards=4))
        assert _normalized(result) == expected

    def test_empty_input_to_sharded_segment(self, qa_bundle):
        def plan():
            return (
                Dataset.from_source(qa_bundle.source())
                .where("priority > 99")
                .sem_map(Field("customer", str, "customer"),
                         instruction_for("qa.customer"))
            )

        result = plan().run(_config(qa_bundle, shards=4))
        assert result.records == []
        assert result.total_cost_usd == 0.0

    def test_shard_count_exceeding_record_count(self):
        bundle = build_corpus(CorpusSpec(seed=3, n_records=4))
        def plan():
            return Dataset.from_source(bundle.source()).sem_filter(
                instruction_for("qa.flag_urgent")
            )

        expected = _normalized(plan().run(_config(bundle, seed=3)))
        result = plan().run(_config(bundle, seed=3, shards=16))
        assert _normalized(result) == expected

    def test_optimized_plan_runs_sharded(self, qa_bundle):
        expected = _normalized(
            _filter_map(qa_bundle).run(_config(qa_bundle, optimize=True))
        )
        result = _filter_map(qa_bundle).run(
            _config(qa_bundle, optimize=True, shards=4)
        )
        assert _normalized(result) == expected


@settings(max_examples=10, deadline=None)
@given(
    shards=st.integers(min_value=1, max_value=6),
    partitioner=st.sampled_from(PARTITIONERS),
)
def test_property_sharding_preserves_output_multiset(shards, partitioner):
    # Any (partitioner, shard count) must reproduce the unsharded answer
    # exactly — the QA harness's check_shard_equivalence oracle, as a
    # hypothesis property over the whole configuration space.
    bundle = build_corpus(CorpusSpec(seed=11, n_records=12))
    baseline = (
        Dataset.from_source(bundle.source())
        .sem_filter(instruction_for("qa.flag_urgent"))
        .run(_config(bundle, seed=11))
    )
    result = (
        Dataset.from_source(bundle.source())
        .sem_filter(instruction_for("qa.flag_urgent"))
        .run(_config(bundle, seed=11, shards=shards, partitioner=partitioner))
    )
    assert _normalized(result) == _normalized(baseline)


# ---------------------------------------------------------------------------
# shards=1 is an exact no-op
# ---------------------------------------------------------------------------


class TestShardsOneNoOp:
    def test_no_shard_plan_is_attached(self, qa_bundle):
        _, report = _filter_map(qa_bundle).run_with_report(
            _config(qa_bundle, shards=1)
        )
        assert report.shard_plan is None

    def test_identical_records_cost_time_and_spans(self, qa_bundle):
        def traced_run(**kwargs):
            tracer = Tracer()
            llm = SimulatedLLM(
                oracle=SemanticOracle(qa_bundle.registry), seed=13, tracer=tracer
            )
            config = QueryProcessorConfig(
                llm=llm, seed=13, optimize=False, **kwargs
            )
            result = _filter_map(qa_bundle).run(config)
            spans = [
                (s.name, s.kind, s.start_s, s.end_s, s.track)
                for s in tracer.spans
            ]
            return result, spans

        plain, plain_spans = traced_run()
        gated, gated_spans = traced_run(shards=1)
        assert _normalized(gated) == _normalized(plain)
        assert gated.total_cost_usd == plain.total_cost_usd
        assert gated.total_time_s == plain.total_time_s
        assert gated_spans == plain_spans


# ---------------------------------------------------------------------------
# EXPLAIN, spans, and diagnostics
# ---------------------------------------------------------------------------


class TestObservability:
    def test_explain_analyze_fills_shards_column_and_footer(self, qa_bundle):
        text = _filter_map(qa_bundle).explain(
            analyze=True, config=_config(qa_bundle, shards=2)
        )
        assert "Shards" in text
        assert "exchange: scatter over operators" in text
        assert "straggler gap" in text

    def test_unsharded_explain_has_no_exchange_footer(self, qa_bundle):
        text = _filter_map(qa_bundle).explain(
            analyze=True, config=_config(qa_bundle)
        )
        assert "exchange:" not in text

    def test_exchange_footer_rendering(self):
        plan = ShardPlan(n_shards=2, partitioner="hash")
        segment = ShardSegment(
            "shuffle", 1, 2, strategy="shuffle", alternative="broadcast",
            shard_makespans=[2.0, 3.5], straggler_gap_s=1.5,
            moved_records=12, cost_alternative=48,
        )
        plan.segments = [ShardSegment("global", 0, 1, strategy="source"), segment]
        text = exchange_footer(plan)
        assert "shuffle over operators 1..1" in text
        assert "2 shards, makespan 3.5s, straggler gap 1.5s" in text
        assert "12 records moved" in text
        assert "(rejected broadcast: 48 transfers)" in text

    def test_exchange_footer_reports_reuse(self):
        plan = ShardPlan(n_shards=2, partitioner="hash", reused_prefix=2)
        plan.segments = [
            ShardSegment(
                "scatter", 0, 2, strategy="scatter",
                replayed_shards=1, delta_shards=1,
            )
        ]
        text = exchange_footer(plan)
        assert "1 shard(s) replayed, 1 delta" in text
        assert "2-operator prefix replayed" in text

    def test_sharded_trace_validates_with_exchange_spans(self, qa_bundle):
        tracer = Tracer()
        llm = SimulatedLLM(
            oracle=SemanticOracle(qa_bundle.registry), seed=13, tracer=tracer
        )
        config = QueryProcessorConfig(llm=llm, seed=13, optimize=False, shards=3)
        _filter_map(qa_bundle).run(config)
        validate_spans(tracer.spans)  # must not raise
        kinds = {s.kind for s in tracer.spans}
        assert "exchange" in kinds
        tracks = {s.track for s in tracer.spans}
        assert any(t and t.startswith("shard ") for t in tracks)

    def test_segment_diagnostics_are_populated(self, qa_bundle):
        _, report = _filter_map(qa_bundle).run_with_report(
            _config(qa_bundle, shards=4)
        )
        scatter = next(
            s for s in report.shard_plan.segments if s.kind == "scatter"
        )
        assert len(scatter.shard_makespans) == 4
        assert len(scatter.shard_rows) == 4
        assert sum(scatter.shard_rows) > 0
        assert scatter.straggler_gap_s == pytest.approx(
            max(scatter.shard_makespans) - min(scatter.shard_makespans)
        )

    def test_operator_stats_carry_shard_count(self, qa_bundle):
        result = _filter_map(qa_bundle).run(_config(qa_bundle, shards=4))
        sharded = [s for s in result.operator_stats if s.shards == 4]
        assert sharded  # the scatter stages ran shard-parallel


# ---------------------------------------------------------------------------
# Materialization composition
# ---------------------------------------------------------------------------


class TestReuseComposition:
    def test_sharded_run_replays_sharded_capture_for_free(self, qa_bundle):
        store = MaterializationStore()
        cold = _filter_map(qa_bundle).run(
            _config(qa_bundle, shards=4, materialization_store=store)
        )
        warm, report = _filter_map(qa_bundle).run_with_report(
            _config(qa_bundle, shards=4, materialization_store=store)
        )
        assert _normalized(warm) == _normalized(cold)
        assert warm.total_cost_usd == 0.0
        assert report.shard_plan.reused_any
        assert report.shard_plan.reused_prefix > 0

    def test_unsharded_capture_replays_under_sharding(self, qa_bundle):
        store = MaterializationStore()
        cold = _filter_map(qa_bundle).run(
            _config(qa_bundle, materialization_store=store)
        )
        warm, report = _filter_map(qa_bundle).run_with_report(
            _config(qa_bundle, shards=4, materialization_store=store)
        )
        assert _normalized(warm) == _normalized(cold)
        assert warm.total_cost_usd == 0.0
        assert report.shard_plan.reused_any

    def test_appended_source_runs_only_per_shard_deltas(self):
        # Hash partitioning keeps shard assignments stable under append,
        # so each shard replays its old prefix and runs only its tail.
        store = MaterializationStore()
        records = _records(18, prefix="d")
        instruction = "The text mentions suspicious deals."

        def run(n, with_store):
            dataset = Dataset.from_records(
                records[:n], SCHEMA, source_id="delta-src"
            ).sem_filter(instruction)
            config = QueryProcessorConfig(
                llm=SimulatedLLM(seed=0), seed=0, optimize=False, shards=4,
                materialization_store=store if with_store else None,
            )
            return dataset.run_with_report(config)

        cold, _ = run(12, with_store=True)
        warm, report = run(18, with_store=True)
        fresh, _ = run(18, with_store=False)
        assert _normalized(warm) == _normalized(fresh)
        assert warm.total_cost_usd < fresh.total_cost_usd
        scatter = next(
            s for s in report.shard_plan.segments if s.kind == "scatter"
        )
        assert scatter.delta_shards > 0


# ---------------------------------------------------------------------------
# Serving integration
# ---------------------------------------------------------------------------


class TestServing:
    def test_sharded_query_respects_serving_clock_invariant(self, qa_bundle):
        runtime = AnalyticsRuntime.for_bundle(qa_bundle, seed=13)
        serving = runtime.serving(shards=4)
        job = serving.submit(
            "tenant-a",
            Dataset.from_source(qa_bundle.source()).sem_filter(
                instruction_for("qa.flag_urgent")
            ),
        )
        assert runtime.llm.clock.elapsed == 0.0  # submit never moves time
        assert job.timeline.steps
        report = serving.drain()
        assert len(report.jobs) == 1

    def test_served_sharded_records_match_standalone(self, qa_bundle):
        expected = _normalized(
            Dataset.from_source(qa_bundle.source())
            .sem_filter(instruction_for("qa.flag_urgent"))
            .run(_config(qa_bundle))
        )
        runtime = AnalyticsRuntime.for_bundle(qa_bundle, seed=13)
        serving = runtime.serving(shards=4)
        job = serving.submit(
            "tenant-a",
            Dataset.from_source(qa_bundle.source()).sem_filter(
                instruction_for("qa.flag_urgent")
            ),
        )
        serving.drain()
        normalized = [
            (r.uid, tuple(sorted(r.fields.items()))) for r in job.records
        ]
        assert normalized == expected


# ---------------------------------------------------------------------------
# QA harness wiring
# ---------------------------------------------------------------------------


class TestQaHarnessWiring:
    def test_matrix_includes_sharded_specs_for_every_plan(self):
        import random

        from repro.qa.configs import config_matrix
        from repro.qa.corpus import CorpusSpec
        from repro.qa.fuzzer import PlanFuzzer

        fuzzer = PlanFuzzer(seed=0)
        plan = fuzzer.generate_plan(
            random.Random(0), CorpusSpec(seed=0, n_records=12)
        )
        specs = [
            s for s in config_matrix(plan) if s.answer_class == "sharded"
        ]
        assert len(specs) >= 3
        assert {s.partitioner for s in specs} == set(PARTITIONERS)
        assert all(s.shards > 1 for s in specs)

    def test_shard_equivalence_oracle_is_registered(self):
        from repro.qa.oracles import ORACLES, check_shard_equivalence

        assert check_shard_equivalence in ORACLES
