"""Tests for EXPLAIN ANALYZE extensions and execution/bench reporting."""

import pytest

from repro.bench.harness import TrialOutcome, render_report, summarize
from repro.data.datasets import enron as en
from repro.errors import PlanError
from repro.llm.faults import FaultConfig, FaultInjector, RetryPolicy
from repro.sem import Dataset, QueryProcessorConfig


def _dataset(bundle):
    return (
        Dataset.from_source(bundle.source())
        .sem_filter(en.FILTER_MENTIONS)
        .sem_filter(en.FILTER_FIRSTHAND)
    )


# ---------------------------------------------------------------------------
# EXPLAIN ANALYZE
# ---------------------------------------------------------------------------


def test_explain_analyze_snapshot_columns(make_llm, enron_bundle):
    llm = make_llm(enron_bundle, seed=2)
    config = QueryProcessorConfig(llm=llm, seed=2)
    text = _dataset(enron_bundle).explain(analyze=True, config=config)
    header = next(
        line for line in text.splitlines() if line.startswith("| Operator")
    )
    for column in (
        "In", "Est. out", "Out", "Est. $", "Actual $", "Time (s)",
        "Calls", "Tokens", "Cache", "Retried", "Failed",
    ):
        assert f" {column} " in header or header.endswith(f" {column} |"), column
    assert "EXPLAIN ANALYZE" in text
    assert "totals: $" in text
    # A clean run shows zero retries and no fault-tolerance footer.
    assert "fault tolerance:" not in text


def test_explain_without_analyze_is_the_logical_plan(enron_bundle):
    text = _dataset(enron_bundle).explain()
    assert "SemFilter" in text
    assert "EXPLAIN ANALYZE" not in text


def test_explain_analyze_requires_config(enron_bundle):
    with pytest.raises(PlanError, match="QueryProcessorConfig"):
        _dataset(enron_bundle).explain(analyze=True)


def test_explain_analyze_surfaces_faults(make_llm, enron_bundle):
    llm = make_llm(
        enron_bundle,
        seed=5,
        faults=FaultInjector(FaultConfig(rate=0.3), seed=5),
        retry=RetryPolicy(max_attempts=8),
    )
    config = QueryProcessorConfig(llm=llm, seed=5, on_failure="skip")
    text = _dataset(enron_bundle).explain(analyze=True, config=config)
    assert "fault tolerance:" in text
    assert "retried calls" in text


# ---------------------------------------------------------------------------
# ExecutionResult.report()
# ---------------------------------------------------------------------------


def test_execution_report_renders_per_operator_rows(make_llm, enron_bundle):
    llm = make_llm(enron_bundle, seed=2)
    config = QueryProcessorConfig(llm=llm, seed=2)
    result = _dataset(enron_bundle).run(config)
    report = result.report()
    assert "EXECUTION REPORT" in report
    for column in ("Operator", "Tokens", "Cache", "Retried", "Failed"):
        assert column in report
    body = [line for line in report.splitlines() if line.startswith("|")]
    # header + separator + one row per operator + totals
    assert len(body) >= 2 + len(result.operator_stats)
    assert "total" in report


def test_operator_stats_track_tokens_and_cache(make_llm, enron_bundle):
    llm = make_llm(enron_bundle, seed=2)
    config = QueryProcessorConfig(llm=llm, seed=2)
    result = _dataset(enron_bundle).run(config)
    semantic = [s for s in result.operator_stats if s.llm_calls > 0]
    assert semantic
    for stats in semantic:
        assert stats.total_tokens > 0
        assert 0.0 <= stats.cache_hit_ratio <= 1.0


# ---------------------------------------------------------------------------
# Bench-report columns
# ---------------------------------------------------------------------------


def _summary(name, retried=None, failed=None):
    detail = {}
    if retried is not None:
        detail["retried_calls"] = retried
    if failed is not None:
        detail["failed_records"] = failed
    return summarize(
        name,
        [TrialOutcome(quality={"f1": 0.9}, cost_usd=1.0, time_s=2.0, detail=detail)],
    )


def test_render_report_has_fault_columns():
    text = render_report(
        "T",
        [_summary("SysA", retried=3, failed=1), _summary("SysB")],
        metric_columns=[("F1", "f1", lambda v: f"{v:.2f}")],
    )
    header = next(line for line in text.splitlines() if "System" in line)
    assert "Retried" in header and "Failed" in header
    sys_a = next(line for line in text.splitlines() if "SysA" in line)
    assert "3.0" in sys_a and "1.0" in sys_a
    sys_b = next(line for line in text.splitlines() if "SysB" in line)
    assert "-" in sys_b  # absent detail renders as '-'


def test_render_report_pads_paper_rows():
    text = render_report(
        "T",
        [_summary("SysA", retried=0, failed=0)],
        metric_columns=[("F1", "f1", lambda v: f"{v:.2f}")],
        paper_rows={"SysA": ["0.51", "2.10", "31.0"]},
    )
    assert "(paper)" in text and "0.51" in text


def test_table_summaries_carry_fault_detail(enron_bundle):
    from repro.bench.systems import enron_codeagent_system

    outcome = enron_codeagent_system(enron_bundle)(0)
    assert "retried_calls" in outcome.detail
    assert "failed_records" in outcome.detail
