"""Tests for usage reporting and dataset bundle self-validation."""

from repro.core.runtime import AnalyticsRuntime
from repro.data.datasets import kramabench as kb
from repro.llm.usage import UsageEvent, UsageTracker


def test_render_report_breaks_down_by_model_and_tag():
    tracker = UsageTracker()
    tracker.record(UsageEvent("gpt-4o", 100, 10, 0.01, 1.0, tag="query:filter"))
    tracker.record(UsageEvent("gpt-4o-mini", 100, 10, 0.001, 1.0, tag="optimize:filter"))
    tracker.record(UsageEvent("gpt-4o", 0, 0, 0.0, 0.0, tag="query:filter", cached=True))
    report = tracker.render_report()
    assert "gpt-4o: 2 calls" in report
    assert "gpt-4o-mini: 1 calls" in report
    assert "[query]" in report and "[optimize]" in report
    assert "cache hits: 1" in report


def test_runtime_usage_report_after_compute(legal_bundle):
    runtime = AnalyticsRuntime.for_bundle(legal_bundle, seed=0)
    context = runtime.make_context(legal_bundle)
    runtime.compute(context, kb.QUERY_RATIO)
    report = runtime.usage_report()
    assert "total:" in report
    assert "elapsed" in report
    assert "$" in report


def test_all_builtin_bundles_validate(legal_bundle, enron_bundle, realestate_bundle):
    for bundle in (legal_bundle, enron_bundle, realestate_bundle):
        assert bundle.validate() == [], bundle.name


def test_validate_reports_unregistered_intents(realestate_bundle):
    from repro.data.datasets.base import DatasetBundle
    from repro.data.records import DataRecord
    from repro.data.schemas import Field, Schema
    from repro.data.corpus import FileCorpus
    from repro.llm.oracle import IntentRegistry

    bundle = DatasetBundle(
        name="broken",
        corpus=FileCorpus("broken"),
        schema=Schema([Field("a", int)]),
        registry=IntentRegistry(),
        description="",
        record_list=[DataRecord({"a": 1}, annotations={"x.unregistered": True})],
    )
    problems = bundle.validate()
    assert any("unregistered" in problem for problem in problems)


def test_validate_reports_bad_difficulty():
    from repro.data.datasets.base import DatasetBundle
    from repro.data.records import DataRecord
    from repro.data.schemas import Field, Schema
    from repro.data.corpus import FileCorpus
    from repro.llm.oracle import DIFFICULTY_PREFIX, IntentRegistry

    registry = IntentRegistry()
    registry.register("x.flag", ["flag"])
    bundle = DatasetBundle(
        name="broken",
        corpus=FileCorpus("broken"),
        schema=Schema([Field("a", int)]),
        registry=registry,
        description="",
        record_list=[
            DataRecord(
                {"a": 1},
                annotations={"x.flag": True, DIFFICULTY_PREFIX + "x.flag": 3.0},
            )
        ],
    )
    problems = bundle.validate()
    assert any("out of range" in problem for problem in problems)
