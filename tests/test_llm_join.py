"""Tests for pairwise join judgments (oracle + simulated service)."""

import pytest

from repro.data.records import DataRecord
from repro.llm.oracle import DIFFICULTY_PREFIX, IntentRegistry, SemanticOracle
from repro.llm.simulated import SimulatedLLM


def _registry():
    registry = IntentRegistry()
    registry.register("p.topic", ["records", "same", "topic"])
    return registry


def _record(uid, topic, difficulty=0.05):
    return DataRecord(
        {"text": f"about {topic}"},
        uid=uid,
        annotations={"p.topic": topic, DIFFICULTY_PREFIX + "p.topic": difficulty},
    )


def test_oracle_join_equality_truth():
    oracle = SemanticOracle(_registry())
    same = oracle.judge_join(
        "the records discuss the same topic", _record("a", "x"), _record("b", "x")
    )
    different = oracle.judge_join(
        "the records discuss the same topic", _record("a", "x"), _record("b", "y")
    )
    assert same.resolved and same.truth is True
    assert different.resolved and different.truth is False


def test_oracle_join_difficulty_is_max_of_sides():
    oracle = SemanticOracle(_registry())
    result = oracle.judge_join(
        "the records discuss the same topic",
        _record("a", "x", difficulty=0.2),
        _record("b", "x", difficulty=0.8),
    )
    assert result.difficulty == 0.8


def test_oracle_join_unresolved_falls_back_to_lexical():
    oracle = SemanticOracle(IntentRegistry())
    left = DataRecord({"text": "quarterly merger discussion details"}, uid="l")
    right = DataRecord({"text": "merger discussion continues"}, uid="r")
    result = oracle.judge_join("quarterly merger discussion", left, right)
    assert not result.resolved
    assert result.truth is True


def test_oracle_join_one_sided_annotation_unresolved():
    oracle = SemanticOracle(_registry())
    left = _record("a", "x")
    right = DataRecord({"text": "no annotations here"}, uid="b")
    result = oracle.judge_join("the records discuss the same topic", left, right)
    assert not result.resolved


def test_llm_join_charges_both_texts():
    llm = SimulatedLLM(oracle=SemanticOracle(_registry()), seed=0)
    judgment = llm.judge_join(
        "the records discuss the same topic", _record("a", "x"), _record("b", "x")
    )
    assert judgment.answer is True
    single = llm.judge_filter("the records discuss the same topic", _record("c", "x"))
    assert judgment.event.input_tokens > single.event.input_tokens


def test_llm_join_cached_per_pair():
    llm = SimulatedLLM(oracle=SemanticOracle(_registry()), seed=0)
    left, right = _record("a", "x"), _record("b", "x")
    first = llm.judge_join("records with the same topic", left, right)
    second = llm.judge_join("records with the same topic", left, right)
    assert not first.event.cached and second.event.cached
    assert second.event.cost_usd == 0.0


def test_llm_join_pair_order_matters_for_cache():
    llm = SimulatedLLM(oracle=SemanticOracle(_registry()), seed=0)
    left, right = _record("a", "x"), _record("b", "x")
    llm.judge_join("records with the same topic", left, right)
    reversed_pair = llm.judge_join("records with the same topic", right, left)
    assert not reversed_pair.event.cached  # (a,b) and (b,a) are distinct keys


def test_llm_join_noise_on_ambiguous_pairs():
    answers = set()
    for seed in range(12):
        llm = SimulatedLLM(oracle=SemanticOracle(_registry()), seed=seed)
        judgment = llm.judge_join(
            "the records discuss the same topic",
            _record("a", "x", difficulty=1.0),
            _record("b", "y", difficulty=1.0),
        )
        answers.add(judgment.answer)
    assert answers == {True, False}
