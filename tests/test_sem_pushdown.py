"""SQL pushdown: rewrite rules, compiled SQL, and end-to-end equivalence.

The tentpole contract: enabling pushdown (and/or columnar batches) may
change *where* structured work runs — a SqlScan leaf before any LLM
operator instead of interleaved row-mode operators — but never the
records, their order, or their uids.  Cost can only go down, because the
pushed prefix is token-free and prunes LLM inputs.
"""

from __future__ import annotations

import pytest

from repro.data.records import reset_uid_counter
from repro.errors import PlanError
from repro.llm.oracle import SemanticOracle
from repro.llm.simulated import SimulatedLLM
from repro.qa.corpus import CorpusSpec, build_corpus, instruction_for
from repro.sem import logical as L
from repro.sem.config import QueryProcessorConfig
from repro.sem.dataset import Dataset
from repro.sem.materialize import MaterializationStore
from repro.sem.optimizer.pushdown import (
    compiled_sql,
    hoist_struct_filters,
    push_structured_prefix,
)


@pytest.fixture(scope="module")
def qa_bundle():
    return build_corpus(CorpusSpec(seed=13, n_records=24))


def _config(bundle, *, seed: int = 13, **kwargs) -> QueryProcessorConfig:
    llm = SimulatedLLM(oracle=SemanticOracle(bundle.registry), seed=seed)
    return QueryProcessorConfig(llm=llm, seed=seed, **kwargs)


def _normalized(result):
    return [(r.uid, tuple(sorted(r.fields.items()))) for r in result.records]


# ---------------------------------------------------------------------------
# Dataset API validation
# ---------------------------------------------------------------------------


class TestWhereValidation:
    def test_rejects_empty_condition(self):
        dataset = Dataset.from_source(None)
        with pytest.raises(PlanError, match="non-empty"):
            dataset.where("   ")

    def test_rejects_non_string(self):
        dataset = Dataset.from_source(None)
        with pytest.raises(PlanError, match="non-empty"):
            dataset.where(42)

    def test_bad_sql_fails_at_plan_validation(self, qa_bundle):
        dataset = Dataset.from_source(qa_bundle.source()).where("priority >=")
        with pytest.raises(PlanError, match="invalid structured predicate"):
            dataset.run(_config(qa_bundle, optimize=False))


# ---------------------------------------------------------------------------
# Rewrite rules (unit level)
# ---------------------------------------------------------------------------


def _chain(bundle, *ops):
    scan = L.ScanOp(child=None, source=bundle.source())
    return [scan, *ops]


def _where(condition):
    return L.StructFilterOp(child=None, condition=condition)


def _sem(instruction="The ticket is marked urgent."):
    return L.SemFilterOp(child=None, instruction=instruction)


class TestHoist:
    def test_struct_filter_hoists_across_semantic_filter(self, qa_bundle):
        chain = _chain(qa_bundle, _sem(), _where("priority = 4"))
        hoisted = hoist_struct_filters(chain)
        assert [type(op) for op in hoisted[1:3]] == [L.StructFilterOp, L.SemFilterOp]

    def test_hoist_preserves_relative_order_of_struct_filters(self, qa_bundle):
        first, second = _where("priority >= 2"), _where("priority <= 3")
        chain = _chain(qa_bundle, _sem(), first, second)
        hoisted = hoist_struct_filters(chain)
        assert hoisted[1] is first and hoisted[2] is second

    def test_hoist_stops_at_non_filter(self, qa_bundle):
        # A structured filter behind a map reads fields the map may write:
        # it must not cross.
        mapper = L.PyMapOp(child=None, fn=lambda r: {}, description="noop")
        chain = _chain(qa_bundle, _sem(), mapper, _where("priority = 4"))
        assert hoist_struct_filters(chain) == chain

    def test_noop_when_structured_already_leads(self, qa_bundle):
        chain = _chain(qa_bundle, _where("priority = 4"), _sem())
        assert hoist_struct_filters(chain) is chain

    def test_noop_without_a_scan_leaf(self):
        chain = [L.RetrieveOp(child=None, query="q", k=3), _where("a = 1")]
        assert hoist_struct_filters(chain) is chain


class TestPushStructuredPrefix:
    def test_requires_a_structured_op(self, qa_bundle):
        # Bare projections/limits are not worth a scan rewrite.
        chain = _chain(
            qa_bundle,
            L.ProjectOp(child=None, fields=("title",)),
            L.LimitOp(child=None, n=3),
        )
        new_chain, sql_scan = push_structured_prefix(chain)
        assert sql_scan is None and new_chain == chain

    def test_collects_filter_project_limit(self, qa_bundle):
        chain = _chain(
            qa_bundle,
            _where("priority >= 2"),
            L.ProjectOp(child=None, fields=("title", "priority")),
            L.LimitOp(child=None, n=5),
            _sem(),
        )
        new_chain, sql_scan = push_structured_prefix(chain)
        assert isinstance(new_chain[0], L.SqlScanOp)
        assert [type(op) for op in sql_scan.pushed] == [
            L.StructFilterOp, L.ProjectOp, L.LimitOp,
        ]
        assert isinstance(new_chain[1], L.SemFilterOp) and len(new_chain) == 2

    def test_struct_agg_is_terminal(self, qa_bundle):
        agg = L.StructAggOp(
            child=None, group_by=(), aggregates=(("n", "count(*)"),)
        )
        chain = _chain(
            qa_bundle, _where("priority >= 2"), agg, L.LimitOp(child=None, n=1)
        )
        new_chain, sql_scan = push_structured_prefix(chain)
        # The aggregation re-keys the stream: the limit stays outside.
        assert [type(op) for op in sql_scan.pushed] == [
            L.StructFilterOp, L.StructAggOp,
        ]
        assert isinstance(new_chain[1], L.LimitOp)

    def test_hoist_extends_the_prefix(self, qa_bundle):
        chain = _chain(qa_bundle, _sem(), _where("priority = 4"))
        new_chain, sql_scan = push_structured_prefix(chain)
        assert sql_scan is not None
        assert [type(op) for op in sql_scan.pushed] == [L.StructFilterOp]

    def test_non_scan_leaf_is_untouched(self, qa_bundle):
        retrieve = L.RetrieveOp(child=None, query="anything", k=5)
        chain = [retrieve, _where("priority = 4")]
        new_chain, sql_scan = push_structured_prefix(chain)
        assert sql_scan is None and new_chain == chain


class TestCompiledSql:
    def test_filters_conjoin(self):
        sql = compiled_sql("src", (_where("a = 1"), _where("b = 2")))
        assert sql == "SELECT * FROM src WHERE (a = 1) AND (b = 2)"

    def test_filter_project_limit_in_clause_order(self):
        sql = compiled_sql(
            "src",
            (
                _where("a = 1"),
                L.ProjectOp(child=None, fields=("a", "b")),
                L.LimitOp(child=None, n=3),
            ),
        )
        assert sql == "SELECT a, b FROM src WHERE a = 1 LIMIT 3"

    def test_filter_after_limit_closes_a_subquery(self):
        sql = compiled_sql(
            "src", (L.LimitOp(child=None, n=3), _where("a = 1"))
        )
        assert sql == "SELECT * FROM (SELECT * FROM src LIMIT 3) WHERE a = 1"

    def test_filter_over_projected_fields_closes_a_subquery(self):
        sql = compiled_sql(
            "src",
            (L.ProjectOp(child=None, fields=("a",)), _where("a = 1")),
        )
        assert sql == "SELECT * FROM (SELECT a FROM src) WHERE a = 1"

    def test_aggregation_wraps_the_base(self):
        agg = L.StructAggOp(
            child=None, group_by=("dept",), aggregates=(("n", "count(*)"),)
        )
        sql = compiled_sql("src", (_where("a = 1"), agg))
        assert sql == (
            "SELECT dept, count(*) AS n FROM "
            "(SELECT * FROM src WHERE a = 1) GROUP BY dept"
        )

    def test_bare_aggregation(self):
        agg = L.StructAggOp(
            child=None, group_by=(), aggregates=(("n", "count(*)"),)
        )
        assert compiled_sql("src", (agg,)) == "SELECT count(*) AS n FROM src"

    def test_project_after_limit_closes_a_subquery(self):
        sql = compiled_sql(
            "src",
            (L.LimitOp(child=None, n=3), L.ProjectOp(child=None, fields=("a",))),
        )
        assert sql == "SELECT a FROM (SELECT * FROM src LIMIT 3)"

    def test_consecutive_limits_nest(self):
        sql = compiled_sql(
            "src", (L.LimitOp(child=None, n=5), L.LimitOp(child=None, n=3))
        )
        assert sql == "SELECT * FROM (SELECT * FROM src LIMIT 5) LIMIT 3"

    def test_empty_prefix_renders_plain_scan(self):
        assert compiled_sql("src", ()) == "SELECT * FROM src"


# ---------------------------------------------------------------------------
# End-to-end equivalence
# ---------------------------------------------------------------------------


def _run_modes(qa_bundle, build_plan, *, optimize=False):
    """Run a plan under all four pushdown/columnar modes; return results."""
    outcomes = {}
    for name, pushdown, columnar in (
        ("off-row", False, False),
        ("off-col", False, True),
        ("on-row", True, False),
        ("on-col", True, True),
    ):
        reset_uid_counter()
        config = _config(
            qa_bundle, optimize=optimize, pushdown=pushdown, columnar=columnar
        )
        result, report = build_plan(qa_bundle).run_with_report(config)
        outcomes[name] = (result, report)
    return outcomes


def _filter_where_map_plan(bundle):
    from repro.data.schemas import Field

    return (
        Dataset.from_source(bundle.source())
        .sem_filter(instruction_for("qa.flag_urgent"))
        .where("priority >= 3")
        .sem_map(
            Field("amount", float, "extracted amount"),
            instruction_for("qa.amount"),
        )
    )


class TestEndToEndEquivalence:
    def test_bit_identical_records_across_all_modes(self, qa_bundle):
        outcomes = _run_modes(qa_bundle, _filter_where_map_plan)
        reference = _normalized(outcomes["off-row"][0])
        assert reference  # non-degenerate
        for name, (result, _report) in outcomes.items():
            assert _normalized(result) == reference, name

    def test_pushdown_never_costs_more(self, qa_bundle):
        outcomes = _run_modes(qa_bundle, _filter_where_map_plan)
        assert (
            outcomes["on-row"][0].total_cost_usd
            <= outcomes["off-row"][0].total_cost_usd + 1e-9
        )
        # Columnar mode is free either way.
        assert (
            outcomes["on-col"][0].total_cost_usd
            == outcomes["on-row"][0].total_cost_usd
        )

    def test_pushdown_report_only_when_enabled(self, qa_bundle):
        outcomes = _run_modes(qa_bundle, _filter_where_map_plan)
        assert outcomes["on-row"][1].pushdown_ops == 1
        assert "WHERE priority >= 3" in outcomes["on-row"][1].pushdown_sql
        assert outcomes["off-row"][1].pushdown_ops == 0
        assert outcomes["off-row"][1].pushdown_sql == ""

    def test_equivalence_holds_under_optimization(self, qa_bundle):
        plain = _run_modes(qa_bundle, _filter_where_map_plan)
        optimized = _run_modes(qa_bundle, _filter_where_map_plan, optimize=True)
        reference = _normalized(plain["off-row"][0])
        for name, (result, _report) in optimized.items():
            assert _normalized(result) == reference, name

    def test_limit_pushdown_end_to_end(self, qa_bundle):
        def build(bundle):
            return (
                Dataset.from_source(bundle.source())
                .where("priority >= 2")
                .limit(4)
                .sem_filter(instruction_for("qa.flag_urgent"))
            )

        outcomes = _run_modes(qa_bundle, build)
        reference = _normalized(outcomes["off-row"][0])
        for name, (result, _report) in outcomes.items():
            assert _normalized(result) == reference, name
        assert outcomes["on-row"][1].pushdown_ops == 2

    def test_struct_agg_end_to_end(self, qa_bundle):
        def build(bundle):
            return (
                Dataset.from_source(bundle.source())
                .where("priority >= 2")
                .struct_agg(
                    [("n", "count(*)"), ("worst", "max(priority)")],
                    group_by=[],
                )
            )

        outcomes = _run_modes(qa_bundle, build)
        reference = _normalized(outcomes["off-row"][0])
        assert len(reference) == 1
        fields = dict(reference[0][1])
        assert fields["n"] > 0 and fields["worst"] == 4
        for name, (result, _report) in outcomes.items():
            assert _normalized(result) == reference, name

    def test_grouped_struct_agg_identity(self, qa_bundle):
        def build(bundle):
            return (
                Dataset.from_source(bundle.source())
                .struct_agg([("n", "count(*)")], group_by=["priority"])
            )

        outcomes = _run_modes(qa_bundle, build)
        reference = _normalized(outcomes["off-row"][0])
        assert len(reference) > 1
        for name, (result, _report) in outcomes.items():
            assert _normalized(result) == reference, name


# ---------------------------------------------------------------------------
# EXPLAIN surface
# ---------------------------------------------------------------------------


def test_explain_analyze_surfaces_pushed_section(qa_bundle):
    reset_uid_counter()
    config = _config(qa_bundle, optimize=False)
    text = _filter_where_map_plan(qa_bundle).explain(analyze=True, config=config)
    lines = text.splitlines()
    header = next(line for line in lines if line.startswith("| Operator"))
    sql_col = [cell.strip() for cell in header.split("|")].index("SQL")
    sql_row = next(line for line in lines if line.startswith("| SqlScan"))
    assert [cell.strip() for cell in sql_row.split("|")][sql_col] == "yes"
    assert any(
        "records before the first LLM operator" in line for line in lines
    )
    assert any(
        "compiled to SQL: SELECT * FROM qa-corpus-13 WHERE priority >= 3" in line
        for line in lines
    )


def test_explain_analyze_has_no_pushdown_footer_when_disabled(qa_bundle):
    reset_uid_counter()
    config = _config(qa_bundle, optimize=False, pushdown=False)
    text = _filter_where_map_plan(qa_bundle).explain(analyze=True, config=config)
    assert "compiled to SQL" not in text
    assert "first LLM operator" not in text


# ---------------------------------------------------------------------------
# Composition with materialized reuse
# ---------------------------------------------------------------------------


def test_pushdown_composes_with_materialized_reuse(qa_bundle):
    store = MaterializationStore()

    # Cold pass: row mode primes the store with the structured prefix.
    reset_uid_counter()
    cold_config = _config(
        qa_bundle, optimize=False, pushdown=False, columnar=False,
        materialization_store=store,
    )
    cold, _ = _filter_where_map_plan(qa_bundle).run_with_report(cold_config)

    # Warm pass: the pushed-down plan canonicalizes over the rewritten
    # prefix, so it must land on the same fingerprint and replay.
    reset_uid_counter()
    warm_config = _config(
        qa_bundle, optimize=False, pushdown=True, columnar=True,
        materialization_store=store,
    )
    warm, warm_report = _filter_where_map_plan(qa_bundle).run_with_report(warm_config)

    assert _normalized(warm) == _normalized(cold)
    assert warm_report.reused_prefix > 0
    assert warm_report.reuse_kind == "exact"
    assert warm.total_cost_usd < cold.total_cost_usd
