"""Tests for CSV/HTML parsing helpers."""

from repro.data.tabular import (
    extract_numbers,
    parse_csv,
    parse_html_tables,
    render_csv,
    render_html_report,
)


def test_csv_roundtrip():
    text = render_csv(["a", "b"], [[1, "x"], [2, "y"]])
    rows = parse_csv(text)
    assert rows == [{"a": "1", "b": "x"}, {"a": "2", "b": "y"}]


def test_render_csv_quotes_commas():
    text = render_csv(["a"], [["has, comma"]])
    assert parse_csv(text)[0]["a"] == "has, comma"


def test_parse_html_tables_extracts_cells():
    html = render_html_report(
        "Title", ["para one"], [(["H1", "H2"], [["a", "b"], ["c", "d"]])]
    )
    tables = parse_html_tables(html)
    assert tables == [[["H1", "H2"], ["a", "b"], ["c", "d"]]]


def test_parse_html_multiple_tables():
    html = render_html_report(
        "T", [], [(["A"], [["1"]]), (["B"], [["2"]])]
    )
    assert len(parse_html_tables(html)) == 2


def test_parse_html_no_tables():
    assert parse_html_tables("<html><p>just prose</p></html>") == []


def test_html_report_contains_title_and_paragraphs():
    html = render_html_report("The Title", ["alpha", "beta"], [])
    assert "<h1>The Title</h1>" in html
    assert "<p>alpha</p>" in html and "<p>beta</p>" in html


def test_extract_numbers_handles_commas_and_decimals():
    assert extract_numbers("filed 1,135,291 reports (13.16x)") == [1135291.0, 13.16]


def test_extract_numbers_negative():
    assert extract_numbers("delta -42") == [-42.0]


def test_extract_numbers_none():
    assert extract_numbers("no digits here") == []
