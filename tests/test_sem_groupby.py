"""Tests for the semantic group-by operator."""

import pytest

from repro.data.datasets import realestate as re_mod
from repro.errors import PlanError
from repro.llm.oracle import SemanticOracle
from repro.llm.simulated import SimulatedLLM
from repro.sem import Dataset, MaxQuality, QueryProcessorConfig


def _config(bundle, seed=0, **kwargs):
    llm = SimulatedLLM(oracle=SemanticOracle(bundle.registry), seed=seed)
    kwargs.setdefault("policy", MaxQuality())
    return QueryProcessorConfig(llm=llm, seed=seed, **kwargs)


def test_groupby_partitions_all_records(realestate_bundle):
    config = _config(realestate_bundle)
    result = (
        Dataset.from_source(realestate_bundle.source())
        .sem_groupby(re_mod.MAP_STYLE, re_mod.STYLES)
        .run(config)
    )
    assert 2 <= len(result.records) <= len(re_mod.STYLES)
    total = sum(record["count"] for record in result.records)
    assert total == 120


def test_groupby_counts_match_annotations(realestate_bundle):
    config = _config(realestate_bundle)
    result = (
        Dataset.from_source(realestate_bundle.source())
        .sem_groupby(re_mod.MAP_STYLE, re_mod.STYLES)
        .run(config)
    )
    by_group = {record["group"]: record["count"] for record in result.records}
    truth = {}
    for record in realestate_bundle.records():
        style = record.annotations[re_mod.INTENT_STYLE]
        truth[style] = truth.get(style, 0) + 1
    # Strong model + low difficulty: measured counts within a few records.
    for style, count in truth.items():
        assert abs(by_group.get(style, 0) - count) <= 4


def test_groupby_lineage_points_to_members(realestate_bundle):
    config = _config(realestate_bundle)
    result = (
        Dataset.from_source(realestate_bundle.source())
        .limit(10)
        .sem_groupby(re_mod.MAP_STYLE, re_mod.STYLES)
        .run(config)
    )
    assert all(len(record.parent_uids) == record["count"] for record in result.records)


def test_groupby_with_summaries(realestate_bundle):
    config = _config(realestate_bundle)
    result = (
        Dataset.from_source(realestate_bundle.source())
        .limit(12)
        .sem_groupby(re_mod.MAP_STYLE, re_mod.STYLES, summarize=True)
        .run(config)
    )
    assert all(isinstance(record["summary"], str) for record in result.records)


def test_groupby_requires_two_groups(realestate_bundle):
    with pytest.raises(PlanError):
        Dataset.from_source(realestate_bundle.source()).sem_groupby(
            re_mod.MAP_STYLE, ["only-one"]
        )


def test_groupby_charges_per_record(realestate_bundle):
    config = _config(realestate_bundle, optimize=False)
    llm = config.llm
    (
        Dataset.from_source(realestate_bundle.source())
        .limit(20)
        .sem_groupby(re_mod.MAP_STYLE, re_mod.STYLES)
        .run(config)
    )
    groupby_calls = [
        event for event in llm.tracker.events if event.tag.endswith(":groupby")
    ]
    assert len(groupby_calls) == 20


def test_groupby_model_selection(realestate_bundle):
    from repro.sem.optimizer.policies import MinCost

    config = _config(realestate_bundle, policy=MinCost())
    result, report = (
        Dataset.from_source(realestate_bundle.source())
        .limit(30)
        .sem_groupby(re_mod.MAP_STYLE, re_mod.STYLES)
        .run_with_report(config)
    )
    chosen = [model for label, model in report.chosen_models.items() if "GroupBy" in label]
    assert chosen and chosen[0] != "gpt-4o"
