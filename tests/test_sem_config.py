"""Tests for QueryProcessorConfig validation and helpers."""

import pytest

from repro.errors import ConfigurationError
from repro.llm.models import DEFAULT_MODEL
from repro.sem.config import QueryProcessorConfig


def test_defaults_are_sane(make_llm):
    config = QueryProcessorConfig(llm=make_llm())
    assert config.optimize and config.reorder_filters and config.select_models
    assert config.champion_model == DEFAULT_MODEL
    assert config.parallelism == 1  # iterator semantics by default
    assert config.join_method == "nested"
    assert config.max_cost_usd is None


def test_sample_size_validated(make_llm):
    with pytest.raises(ConfigurationError):
        QueryProcessorConfig(llm=make_llm(), sample_size=0)


def test_parallelism_validated(make_llm):
    with pytest.raises(ConfigurationError):
        QueryProcessorConfig(llm=make_llm(), parallelism=0)


def test_candidate_models_default_sorted_by_cost(make_llm):
    config = QueryProcessorConfig(llm=make_llm())
    models = config.candidate_models()
    assert models[0] == "gpt-4o-mini"
    assert models[-1] == "gpt-4o"


def test_candidate_models_override(make_llm):
    config = QueryProcessorConfig(llm=make_llm(), available_models=["gpt-4o"])
    assert config.candidate_models() == ["gpt-4o"]


def test_candidate_models_override_returns_copy(make_llm):
    config = QueryProcessorConfig(llm=make_llm(), available_models=["gpt-4o"])
    config.candidate_models().append("mutated")
    assert config.candidate_models() == ["gpt-4o"]
