"""Tests for QueryProcessorConfig validation and helpers."""

import pytest

from repro.errors import ConfigurationError
from repro.llm.models import DEFAULT_MODEL
from repro.llm.simulated import SimulatedLLM
from repro.sem.config import QueryProcessorConfig


def _llm():
    return SimulatedLLM(seed=0)


def test_defaults_are_sane():
    config = QueryProcessorConfig(llm=_llm())
    assert config.optimize and config.reorder_filters and config.select_models
    assert config.champion_model == DEFAULT_MODEL
    assert config.parallelism == 1  # iterator semantics by default
    assert config.join_method == "nested"
    assert config.max_cost_usd is None


def test_sample_size_validated():
    with pytest.raises(ConfigurationError):
        QueryProcessorConfig(llm=_llm(), sample_size=0)


def test_parallelism_validated():
    with pytest.raises(ConfigurationError):
        QueryProcessorConfig(llm=_llm(), parallelism=0)


def test_candidate_models_default_sorted_by_cost():
    config = QueryProcessorConfig(llm=_llm())
    models = config.candidate_models()
    assert models[0] == "gpt-4o-mini"
    assert models[-1] == "gpt-4o"


def test_candidate_models_override():
    config = QueryProcessorConfig(llm=_llm(), available_models=["gpt-4o"])
    assert config.candidate_models() == ["gpt-4o"]


def test_candidate_models_override_returns_copy():
    config = QueryProcessorConfig(llm=_llm(), available_models=["gpt-4o"])
    config.candidate_models().append("mutated")
    assert config.candidate_models() == ["gpt-4o"]
