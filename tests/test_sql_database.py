"""Tests for the Database facade and DDL/DML surface."""

import pytest

from repro.errors import SQLExecutionError
from repro.sql import Database


def test_create_insert_count():
    db = Database()
    db.execute("CREATE TABLE t (a INTEGER)")
    result = db.execute("INSERT INTO t VALUES (1), (2), (3)")
    assert result.rows[0][0] == 3
    assert db.execute("SELECT COUNT(*) FROM t").scalar() == 3


def test_create_duplicate_rejected_unless_if_not_exists():
    db = Database()
    db.execute("CREATE TABLE t (a INTEGER)")
    with pytest.raises(SQLExecutionError):
        db.execute("CREATE TABLE t (a INTEGER)")
    db.execute("CREATE TABLE IF NOT EXISTS t (a INTEGER)")  # no error


def test_drop_table():
    db = Database()
    db.execute("CREATE TABLE t (a INTEGER)")
    db.execute("DROP TABLE t")
    assert not db.has_table("t")
    with pytest.raises(SQLExecutionError):
        db.execute("DROP TABLE t")
    db.execute("DROP TABLE IF EXISTS t")  # no error


def test_insert_type_coercion_and_enforcement():
    db = Database()
    db.execute("CREATE TABLE t (a INTEGER, b REAL)")
    db.execute("INSERT INTO t VALUES (1, 2)")  # int into REAL promotes
    assert db.query("SELECT * FROM t")[0] == {"a": 1, "b": 2.0}
    with pytest.raises(SQLExecutionError):
        db.execute("INSERT INTO t VALUES ('not-int', 1.0)")


def test_insert_named_columns_fill_null():
    db = Database()
    db.execute("CREATE TABLE t (a INTEGER, b TEXT)")
    db.execute("INSERT INTO t (b) VALUES ('only-b')")
    assert db.query("SELECT * FROM t")[0] == {"a": None, "b": "only-b"}


def test_insert_wrong_arity_rejected():
    db = Database()
    db.execute("CREATE TABLE t (a INTEGER, b TEXT)")
    with pytest.raises(SQLExecutionError):
        db.execute("INSERT INTO t VALUES (1)")


def test_create_table_from_rows_infers_types():
    db = Database()
    table = db.create_table_from_rows(
        "inferred",
        [
            {"name": "x", "count": 3, "score": 1.5, "flag": True},
            {"name": "y", "count": 4, "score": 2.5, "flag": False, "extra": "late"},
        ],
    )
    type_map = {column.name: column.type_name for column in table.columns}
    assert type_map == {
        "name": "text", "count": "integer", "score": "real",
        "flag": "boolean", "extra": "text",
    }
    assert db.query("SELECT extra FROM inferred WHERE name = 'x'")[0]["extra"] is None


def test_create_table_from_rows_replace():
    db = Database()
    db.create_table_from_rows("t", [{"a": 1}])
    with pytest.raises(SQLExecutionError):
        db.create_table_from_rows("t", [{"a": 2}])
    db.create_table_from_rows("t", [{"a": 2}], replace=True)
    assert db.execute("SELECT a FROM t").scalar() == 2


def test_create_table_from_zero_rows_rejected():
    with pytest.raises(SQLExecutionError):
        Database().create_table_from_rows("t", [])


def test_table_names_sorted():
    db = Database()
    db.execute("CREATE TABLE zeta (a INT)")
    db.execute("CREATE TABLE alpha (a INT)")
    assert db.table_names() == ["alpha", "zeta"]


def test_result_scalar_requires_1x1():
    db = Database()
    db.execute("CREATE TABLE t (a INTEGER)")
    db.execute("INSERT INTO t VALUES (1), (2)")
    with pytest.raises(SQLExecutionError):
        db.execute("SELECT a FROM t").scalar()
