"""Tests for the trace exporters: Chrome trace JSON, JSONL, validation."""

import json
from pathlib import Path

import pytest

from repro.data.datasets import enron as en
from repro.llm.oracle import SemanticOracle
from repro.llm.simulated import SimulatedLLM
from repro.obs import (
    MetricsRegistry,
    Tracer,
    chrome_trace,
    validate_chrome_trace,
    validate_spans,
    write_chrome_trace,
    write_jsonl,
)
from repro.sem import Dataset, QueryProcessorConfig
from repro.utils.clock import VirtualClock

from tests.golden_builders import GOLDEN_BUILDERS, hand_built_tracer, render_golden

GOLDEN_DIR = Path(__file__).parent / "goldens"
GOLDEN = GOLDEN_DIR / "chrome_trace_golden.json"

# The deterministic span tree shared with scripts/update_goldens.py.
_hand_built_tracer = hand_built_tracer


def test_chrome_trace_matches_golden_file():
    tracer, metrics = _hand_built_tracer()
    payload = chrome_trace(tracer, metrics=metrics)
    expected = json.loads(GOLDEN.read_text(encoding="utf-8"))
    assert payload == expected


@pytest.mark.parametrize("filename", sorted(GOLDEN_BUILDERS))
def test_goldens_are_up_to_date(filename):
    # Byte-for-byte: scripts/update_goldens.py must be a no-op on a clean
    # tree.  A parse-level match with different formatting still fails here.
    on_disk = (GOLDEN_DIR / filename).read_text(encoding="utf-8")
    assert on_disk == render_golden(GOLDEN_BUILDERS[filename]()), (
        f"{filename} is stale; run: PYTHONPATH=src python scripts/update_goldens.py"
    )


def test_chrome_trace_structure():
    tracer, metrics = _hand_built_tracer()
    payload = chrome_trace(tracer, metrics=metrics)
    events = payload["traceEvents"]
    x_events = [e for e in events if e["ph"] == "X"]
    meta = [e for e in events if e["ph"] == "M"]
    assert len(x_events) == 8
    track_names = {
        e["args"]["name"] for e in meta if e["name"] == "thread_name"
    }
    assert track_names == {
        "runtime", "llm slot 0", "llm slot 1", "stage 0",
        "shard 0 stage 0", "shard 1 stage 0",
    }
    assert payload["otherData"]["clock_elapsed_s"] == 4.0
    assert payload["otherData"]["metrics"]["counters"]["llm.calls"] == 3
    # Times are microseconds.
    query = next(e for e in x_events if e["name"] == "query:test")
    assert query["ts"] == 0.0 and query["dur"] == pytest.approx(4e6)


def test_write_and_validate_chrome_trace(tmp_path):
    tracer, metrics = _hand_built_tracer()
    path = write_chrome_trace(tmp_path / "trace.json", tracer, metrics=metrics)
    summary = validate_chrome_trace(path)
    assert summary["events"] == 8
    assert summary["tracks"] == 6
    assert summary["trace_end_s"] == pytest.approx(4.0)
    assert summary["drift"] == pytest.approx(0.0)


def test_validate_chrome_trace_rejects_drift(tmp_path):
    tracer, _metrics = _hand_built_tracer()
    path = write_chrome_trace(
        tmp_path / "trace.json", tracer, clock_elapsed_s=30.0
    )
    with pytest.raises(ValueError, match="virtual\\s+clock|clock elapsed"):
        validate_chrome_trace(path)


def test_validate_chrome_trace_rejects_unbalanced_spans(tmp_path):
    payload = {
        "traceEvents": [
            {"name": "a", "cat": "x", "ph": "X", "ts": 0.0, "dur": 10.0,
             "pid": 1, "tid": 0, "args": {}},
            {"name": "b", "cat": "x", "ph": "X", "ts": 5.0, "dur": 10.0,
             "pid": 1, "tid": 0, "args": {}},
        ],
        "otherData": {},
    }
    path = tmp_path / "bad.json"
    path.write_text(json.dumps(payload), encoding="utf-8")
    with pytest.raises(ValueError, match="unbalanced"):
        validate_chrome_trace(path)


def test_validate_spans_rejects_escaping_child():
    clock = VirtualClock()
    tracer = Tracer(clock)
    with tracer.span("parent"):
        clock.advance(1.0)
        tracer.add_span("child", "cell", 0.5, 5.0)
    with pytest.raises(ValueError, match="escapes parent"):
        validate_spans(tracer.spans)


def test_write_jsonl_roundtrip(tmp_path):
    tracer, metrics = _hand_built_tracer()
    path = write_jsonl(tmp_path / "events.jsonl", tracer, metrics=metrics)
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    spans = [line for line in lines if line["type"] == "span"]
    counters = [line for line in lines if line["type"] == "counter"]
    histograms = [line for line in lines if line["type"] == "histogram"]
    assert len(spans) == len(tracer.spans)
    assert {span["name"] for span in spans} >= {"query:test", "gpt-4o"}
    assert counters[0]["name"] == "llm.calls" and counters[0]["value"] == 3
    assert histograms[0]["count"] == 1


def test_traced_query_exports_a_valid_trace(tmp_path, enron_bundle):
    tracer = Tracer()
    metrics = MetricsRegistry()
    llm = SimulatedLLM(
        oracle=SemanticOracle(enron_bundle.registry),
        seed=2,
        tracer=tracer,
        metrics=metrics,
    )
    config = QueryProcessorConfig(llm=llm, seed=2, pipeline=True, parallelism=4)
    (
        Dataset.from_source(enron_bundle.source())
        .sem_filter(en.FILTER_MENTIONS)
        .sem_filter(en.FILTER_FIRSTHAND)
        .run(config)
    )
    path = write_chrome_trace(tmp_path / "query.trace.json", tracer, metrics=metrics)
    summary = validate_chrome_trace(path, tolerance=0.01)
    assert summary["clock_elapsed_s"] == pytest.approx(llm.clock.elapsed)
    assert summary["drift"] <= 0.01
    jsonl = write_jsonl(
        tmp_path / "query.jsonl", tracer, metrics=metrics, tracker=llm.tracker
    )
    lines = [json.loads(line) for line in jsonl.read_text().splitlines()]
    usage = [line for line in lines if line["type"] == "usage_event"]
    assert len(usage) == len(llm.tracker.events)


def test_cli_trace_flag_end_to_end(tmp_path, capsys):
    from repro.cli import main

    trace_path = tmp_path / "cli.trace.json"
    code = main(
        [
            "query",
            "Compute the ratio between the number of identity theft reports "
            "in the year 2024 and the number of identity theft reports in "
            "the year 2001.",
            "--dataset",
            "legal",
            "--trace",
            str(trace_path),
            "--metrics",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert trace_path.exists()
    assert (tmp_path / "cli.trace.jsonl").exists()
    assert "RUNTIME METRICS" in out and "llm.calls" in out
    summary = validate_chrome_trace(trace_path, tolerance=0.01)
    assert summary["drift"] <= 0.01

    # The defaults were restored: a fresh LLM is back to no-op tracing.
    from repro.obs import NOOP_TRACER, get_default_tracer

    assert get_default_tracer() is NOOP_TRACER


# ---------------------------------------------------------------------------
# Span-kind and sibling-overlap validation
# ---------------------------------------------------------------------------


def _closed_tracer():
    clock = VirtualClock()
    tracer = Tracer(clock)
    with tracer.span("query:t", kind="query"):
        clock.advance(4.0)
    return tracer


def test_validate_spans_rejects_unknown_kind():
    clock = VirtualClock()
    tracer = Tracer(clock)
    with tracer.span("mystery", kind="wat"):
        clock.advance(1.0)
    with pytest.raises(ValueError, match="unknown kind 'wat'"):
        validate_spans(tracer.spans)


def test_validate_spans_accepts_replan_and_stats_ingest_kinds():
    clock = VirtualClock()
    tracer = Tracer(clock)
    with tracer.span("query:t", kind="query"):
        with tracer.span("replan", kind="replan", cause="divergence"):
            pass
        clock.advance(1.0)
        with tracer.span("stats.ingest", kind="stats.ingest", observations=3):
            pass
    validate_spans(tracer.spans)  # must not raise


def test_validate_spans_rejects_partially_overlapping_siblings():
    tracer = _closed_tracer()
    parent = tracer.spans[0]
    tracer.add_span("a", "cell", 0.0, 2.0, track="stage 0", parent=parent)
    tracer.add_span("b", "cell", 1.0, 3.0, track="stage 0", parent=parent)
    with pytest.raises(ValueError, match="partially overlaps sibling"):
        validate_spans(tracer.spans)


def test_validate_spans_allows_nested_and_abutting_siblings():
    tracer = _closed_tracer()
    parent = tracer.spans[0]
    tracer.add_span("outer", "cell", 0.0, 3.0, track="stage 0", parent=parent)
    tracer.add_span("inner", "cell", 1.0, 2.0, track="stage 0", parent=parent)
    tracer.add_span("next", "cell", 3.0, 4.0, track="stage 0", parent=parent)
    validate_spans(tracer.spans)  # nest + abut: fine


def test_validate_spans_ignores_zero_duration_markers():
    tracer = _closed_tracer()
    parent = tracer.spans[0]
    tracer.add_span("a", "cell", 0.0, 2.0, track="stage 0", parent=parent)
    tracer.add_span("marker", "cell", 1.0, 1.0, track="stage 0", parent=parent)
    validate_spans(tracer.spans)


def test_validate_spans_allows_overlapping_roots():
    # Concurrent serving queries overlap on a tenant track by design.
    tracer = Tracer(VirtualClock())
    tracer.add_span("q0", "serving-query", 0.0, 2.0, track="tenant a")
    tracer.add_span("q1", "serving-query", 1.0, 3.0, track="tenant a")
    validate_spans(tracer.spans)


def test_jsonl_histograms_carry_percentiles(tmp_path):
    tracer, metrics = _hand_built_tracer()
    path = write_jsonl(tmp_path / "events.jsonl", tracer, metrics=metrics)
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    histograms = [line for line in lines if line["type"] == "histogram"]
    assert histograms and all(
        {"p50", "p95", "p99"} <= set(line) for line in histograms
    )
