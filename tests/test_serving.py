"""Multi-tenant serving: timelines, batching, fairness, quotas, isolation."""

from __future__ import annotations

import pytest

from repro.core.runtime import AnalyticsRuntime
from repro.errors import QuotaExceededError, ServingError
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.qa.corpus import CorpusSpec, build_corpus, instruction_for
from repro.qa.plans import normalized_records
from repro.sem import logical as L
from repro.sem.dataset import Dataset
from repro.sem.materialize import prefix_fingerprints
from repro.serve import (
    CallTimeline,
    ServingRuntime,
    TenantSpec,
    build_arrivals,
    submit_workload,
    zipf_rates,
)


@pytest.fixture(scope="module")
def qa_bundle():
    return build_corpus(CorpusSpec(seed=7, n_records=12))


def make_runtime(qa_bundle, **kwargs):
    return AnalyticsRuntime.for_bundle(qa_bundle, seed=7, **kwargs)


def filter_query(qa_bundle) -> Dataset:
    return Dataset.from_source(qa_bundle.source()).sem_filter(
        instruction_for("qa.flag_urgent")
    )


def run_workload(qa_bundle, batching: bool):
    """The standard two-tenant workload, scheduled in the given mode."""
    runtime = make_runtime(qa_bundle)
    serving = runtime.serving(
        tenants=[TenantSpec("tenant-00", weight=2.0), TenantSpec("tenant-01")],
        provider_width=8,
        batching=batching,
    )
    arrivals = build_arrivals(7, zipf_rates(2, 0.5), duration_s=20.0)
    jobs, rejected = submit_workload(serving, qa_bundle, arrivals)
    assert not rejected
    report = serving.drain()
    return runtime, jobs, report


# ---------------------------------------------------------------------------
# Timeline capture
# ---------------------------------------------------------------------------


def test_submit_captures_timeline_without_advancing_clock(qa_bundle):
    runtime = make_runtime(qa_bundle)
    serving = runtime.serving()
    job = serving.submit("alice", filter_query(qa_bundle))
    assert runtime.llm.clock.elapsed == 0.0
    assert job.timeline.steps
    assert job.timeline.total_calls() > 0
    assert job.timeline.standalone_duration() > 0.0
    assert job.raw_cost_usd > 0.0
    assert len(job.records) > 0
    # Call metadata survived positional pairing: model names are present.
    assert any(
        call.model is not None
        for step in job.timeline.steps
        for call in step.calls
    )


def test_submit_resets_sink_and_scope(qa_bundle):
    runtime = make_runtime(qa_bundle)
    serving = runtime.serving()
    serving.submit("alice", filter_query(qa_bundle))
    assert runtime.llm.serve_sink is None
    assert runtime.llm.cache_scope == ""


def test_timeline_drops_metadata_on_count_mismatch():
    timeline = CallTimeline()
    timeline.note_call("gpt-4o-mini", False, 10, 5, 1.0)
    timeline.end_step(4, [1.0, 2.0])  # one note, two latencies
    (step,) = timeline.steps
    assert [call.seconds for call in step.calls] == [1.0, 2.0]
    assert all(call.model is None for call in step.calls)


def test_drain_advances_clock_by_makespan(qa_bundle):
    runtime, _jobs, report = run_workload(qa_bundle, batching=True)
    assert runtime.llm.clock.elapsed == pytest.approx(report.makespan_s)


# ---------------------------------------------------------------------------
# Cross-query batching vs. the serial baseline
# ---------------------------------------------------------------------------


def test_batched_records_bit_identical_to_serial(qa_bundle):
    _rt_b, batched_jobs, _rep_b = run_workload(qa_bundle, batching=True)
    _rt_s, serial_jobs, _rep_s = run_workload(qa_bundle, batching=False)
    assert len(batched_jobs) == len(serial_jobs)
    for batched, serial in zip(batched_jobs, serial_jobs):
        assert batched.tag == serial.tag
        assert batched.fingerprint == serial.fingerprint
        assert normalized_records(batched.records) == normalized_records(
            serial.records
        )
        assert batched.raw_cost_usd == pytest.approx(serial.raw_cost_usd)


def test_batching_improves_latency_and_cost(qa_bundle):
    _rt_b, _jobs_b, batched = run_workload(qa_bundle, batching=True)
    _rt_s, _jobs_s, serial = run_workload(qa_bundle, batching=False)
    assert batched.latency_p99() < serial.latency_p99()
    assert batched.cost_per_query_usd() < serial.cost_per_query_usd()
    assert batched.makespan_s <= serial.makespan_s + 1e-9
    assert batched.rebate_total_usd() > 0.0
    assert 0.0 < batched.batch_fill() <= 1.0
    assert batched.waves and not serial.waves


def test_empty_drain_is_harmless(qa_bundle):
    runtime = make_runtime(qa_bundle)
    serving = runtime.serving()
    report = serving.drain()
    assert report.jobs == [] and report.makespan_s == 0.0
    assert runtime.llm.clock.elapsed == 0.0


# ---------------------------------------------------------------------------
# Fairness under tenant skew
# ---------------------------------------------------------------------------


def _skewed_serving(qa_bundle, batching: bool):
    from repro.serve.workload import _template_builders

    runtime = make_runtime(qa_bundle)
    serving = runtime.serving(
        tenants=[TenantSpec("heavy"), TenantSpec("light")],
        provider_width=4,
        batching=batching,
    )
    # The heavy tenant floods six *distinct* queries (same-plan repeats
    # would collapse via its own scoped caches) before the light tenant's.
    builders = _template_builders(qa_bundle)
    for name in sorted(builders):
        serving.submit("heavy", builders[name](), arrival_s=0.0)
    serving.submit("light", filter_query(qa_bundle), arrival_s=0.0)
    return serving.drain()


def test_stride_scheduling_protects_light_tenant(qa_bundle):
    batched = _skewed_serving(qa_bundle, batching=True)
    serial = _skewed_serving(qa_bundle, batching=False)
    batched_summary = batched.tenant_summary()
    serial_summary = serial.tenant_summary()
    # Serially the light tenant waits behind the whole flood; fair-shared
    # waves let it finish far sooner.
    assert (
        batched_summary["light"]["mean_slowdown"]
        < serial_summary["light"]["mean_slowdown"]
    )
    assert (
        batched_summary["light"]["mean_latency_s"]
        < serial_summary["light"]["mean_latency_s"]
    )
    # Under stride scheduling the flood's cost lands on the flooding
    # tenant, not on the innocent light tenant.
    assert (
        batched_summary["light"]["mean_slowdown"]
        <= batched_summary["heavy"]["mean_slowdown"]
    )


def test_weights_shift_capacity(qa_bundle):
    runtime = make_runtime(qa_bundle)
    serving = runtime.serving(
        tenants=[TenantSpec("a", weight=4.0), TenantSpec("b", weight=1.0)],
        provider_width=2,
        batching=True,
    )
    for _ in range(3):
        serving.submit("a", filter_query(qa_bundle), arrival_s=0.0)
        serving.submit("b", filter_query(qa_bundle), arrival_s=0.0)
    report = serving.drain()
    summary = report.tenant_summary()
    assert summary["a"]["mean_latency_s"] <= summary["b"]["mean_latency_s"]


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------


def test_budget_quota_rejects_typed(qa_bundle):
    runtime = make_runtime(qa_bundle)
    serving = runtime.serving(
        tenants=[TenantSpec("capped", budget_usd=1e-6)]
    )
    serving.submit("capped", filter_query(qa_bundle))  # spends past the cap
    events_before = len(runtime.llm.tracker.events)
    with pytest.raises(QuotaExceededError) as excinfo:
        serving.submit("capped", filter_query(qa_bundle))
    assert excinfo.value.tenant == "capped"
    assert excinfo.value.reason == "budget"
    assert isinstance(excinfo.value, ServingError)
    # The rejected query never touched the shared substrate.
    assert len(runtime.llm.tracker.events) == events_before
    state = serving.tenant("capped")
    assert state.admitted == 1 and state.rejected == 1


def test_rate_quota_rejects_typed_and_recovers(qa_bundle):
    runtime = make_runtime(qa_bundle)
    serving = runtime.serving(
        tenants=[TenantSpec("bursty", max_per_window=2, window_s=10.0)]
    )
    serving.submit("bursty", filter_query(qa_bundle), arrival_s=0.0)
    serving.submit("bursty", filter_query(qa_bundle), arrival_s=1.0)
    with pytest.raises(QuotaExceededError) as excinfo:
        serving.submit("bursty", filter_query(qa_bundle), arrival_s=2.0)
    assert excinfo.value.reason == "rate"
    assert excinfo.value.tenant == "bursty"
    # Once the window slides past the burst, admission resumes.
    job = serving.submit("bursty", filter_query(qa_bundle), arrival_s=15.0)
    assert job.tenant == "bursty"
    assert serving.tenant("bursty").rejected == 1


def test_unknown_tenant_gets_default_spec(qa_bundle):
    runtime = make_runtime(qa_bundle)
    serving = runtime.serving()
    job = serving.submit("walk-in", filter_query(qa_bundle))
    assert job.tenant == "walk-in"
    spec = serving.tenant("walk-in").spec
    assert spec.budget_usd is None and spec.max_per_window is None


def test_tenant_spec_validation():
    with pytest.raises(ValueError):
        TenantSpec("bad", weight=0.0)
    with pytest.raises(ValueError):
        TenantSpec("bad", window_s=0.0)


# ---------------------------------------------------------------------------
# Tenant isolation on the shared caches
# ---------------------------------------------------------------------------


def test_tenants_never_share_cached_work(qa_bundle):
    runtime = make_runtime(qa_bundle)
    serving = runtime.serving()
    job_a = serving.submit("alice", filter_query(qa_bundle))
    job_b = serving.submit("bob", filter_query(qa_bundle))
    # Bob pays full freight: Alice's generation-cache entries and
    # materialized prefixes are invisible under his scope.
    assert job_b.raw_cost_usd == pytest.approx(job_a.raw_cost_usd)
    assert job_b.materialization_hits == 0
    assert normalized_records(job_b.records) == normalized_records(job_a.records)


def test_same_tenant_reuses_own_work(qa_bundle):
    runtime = make_runtime(qa_bundle)
    serving = runtime.serving()
    first = serving.submit("alice", filter_query(qa_bundle))
    second = serving.submit("alice", filter_query(qa_bundle))
    assert second.materialization_hits >= 1
    assert second.raw_cost_usd < first.raw_cost_usd
    assert normalized_records(second.records) == normalized_records(first.records)


def test_scoped_fingerprints_are_namespaced(qa_bundle):
    scan = L.ScanOp(child=None, source=qa_bundle.source())
    flt = L.SemFilterOp(
        child=scan, instruction=instruction_for("qa.flag_urgent"), model=None
    )
    chain = [scan, flt]
    models = [None, "mini"]
    alice = prefix_fingerprints(chain, models, 7, scope="alice")
    bob = prefix_fingerprints(chain, models, 7, scope="bob")
    unscoped = prefix_fingerprints(chain, models, 7)
    assert alice[-1] and bob[-1] and unscoped[-1]
    assert len({alice[-1], bob[-1], unscoped[-1]}) == 3
    # The empty scope is the historical digest (persisted stores stay valid).
    assert unscoped == prefix_fingerprints(chain, models, 7, scope="")


# ---------------------------------------------------------------------------
# Observability
# ---------------------------------------------------------------------------


def test_per_tenant_metrics_and_serving_spans(qa_bundle):
    metrics = MetricsRegistry()
    tracer = Tracer()
    runtime = make_runtime(qa_bundle, metrics=metrics, tracer=tracer)
    serving = runtime.serving(provider_width=8)
    serving.submit("alice", filter_query(qa_bundle), arrival_s=0.0)
    serving.submit("bob", filter_query(qa_bundle), arrival_s=1.0)
    report = serving.drain()

    counters = metrics.snapshot()["counters"]
    assert counters["serving.tenant.alice.queries"] == 1
    assert counters["serving.tenant.bob.queries"] == 1
    assert counters["serving.tenant.alice.cost_usd"] > 0.0
    assert counters["serving.drains"] == 1
    assert counters["serving.waves"] == len(report.waves)
    latency = metrics.histogram("serving.tenant.alice.latency_s")
    assert latency.count == 1

    kinds = {span.kind for span in tracer.spans}
    assert "serving-query" in kinds and "serving-wave" in kinds
    query_tracks = {
        span.track for span in tracer.spans if span.kind == "serving-query"
    }
    assert query_tracks == {"tenant alice", "tenant bob"}


def test_rejections_counted(qa_bundle):
    metrics = MetricsRegistry()
    runtime = make_runtime(qa_bundle, metrics=metrics)
    serving = runtime.serving(tenants=[TenantSpec("capped", budget_usd=1e-6)])
    serving.submit("capped", filter_query(qa_bundle))
    with pytest.raises(QuotaExceededError):
        serving.submit("capped", filter_query(qa_bundle))
    assert metrics.snapshot()["counters"]["serving.tenant.capped.rejected"] == 1


def test_report_renders(qa_bundle):
    _rt, _jobs, report = run_workload(qa_bundle, batching=True)
    text = report.render()
    assert "SERVING SCHEDULE" in text
    assert "tenant-00" in text and "tenant-01" in text


# ---------------------------------------------------------------------------
# Workload driver
# ---------------------------------------------------------------------------


def test_submit_workload_collects_rejections(qa_bundle):
    runtime = make_runtime(qa_bundle)
    serving = runtime.serving(
        tenants=[
            TenantSpec("tenant-00", max_per_window=1, window_s=60.0),
            TenantSpec("tenant-01"),
        ]
    )
    arrivals = build_arrivals(7, zipf_rates(2, 0.5), duration_s=20.0)
    jobs, rejected = submit_workload(serving, qa_bundle, arrivals)
    assert rejected, "the rate-capped tenant should overflow its window"
    assert all(arrival.tenant == "tenant-00" for arrival in rejected)
    assert len(jobs) + len(rejected) == len(arrivals)
    report = serving.drain()
    assert serving.reports == [report]


def test_workload_trace_is_deterministic():
    rates = zipf_rates(3, base_rate=0.4)
    first = build_arrivals(11, rates, duration_s=30.0)
    second = build_arrivals(11, rates, duration_s=30.0)
    assert first == second
    assert first == sorted(first, key=lambda a: (a.arrival_s, a.tenant))
    # Zipf skew: the hottest tenant dominates the trace.
    per_tenant = {name: 0 for name in rates}
    for arrival in first:
        per_tenant[arrival.tenant] += 1
    assert per_tenant["tenant-00"] > per_tenant["tenant-02"]
    # Heavy-tailed template mix: more than one template shows up.
    assert len({arrival.template for arrival in first}) > 1


# ---------------------------------------------------------------------------
# Standing queries served through admission control
# ---------------------------------------------------------------------------


def _live_feed(qa_bundle, n_base: int):
    from repro.data.sources import MemorySource

    records = qa_bundle.records()
    source = MemorySource(
        records[:n_base], qa_bundle.schema, source_id=qa_bundle.name
    )
    dataset = Dataset.from_source(source).sem_filter(
        instruction_for("qa.flag_urgent")
    )
    return records, source, dataset


def test_standing_query_refreshes_through_serving_layer(qa_bundle):
    runtime = make_runtime(qa_bundle)
    serving = runtime.serving(tenants=[TenantSpec("live")])
    records, source, dataset = _live_feed(qa_bundle, 8)
    query = serving.register_standing("live", "feed", dataset)
    assert query.name == "live:feed"
    source.append(records[8:12])
    (tick,) = serving.pump_standing()
    assert tick.fired == "count"
    assert not tick.deferred
    # The served standing view matches a from-scratch run over the full set.
    fresh = make_runtime(qa_bundle)
    baseline = fresh.serving(tenants=[TenantSpec("solo")]).submit(
        "solo", _live_feed(qa_bundle, 12)[2], arrival_s=0.0
    )
    assert normalized_records(query.records) == normalized_records(
        baseline.records
    )


def test_standing_tick_deferred_by_tenant_quota(qa_bundle):
    runtime = make_runtime(qa_bundle)
    serving = runtime.serving(
        tenants=[TenantSpec("broke", max_per_window=1, window_s=100.0)]
    )
    records, source, dataset = _live_feed(qa_bundle, 8)
    query = serving.register_standing("broke", "feed", dataset, prime=False)
    # An interactive query burns the tenant's admission window first.
    serving.submit("broke", _live_feed(qa_bundle, 8)[2], arrival_s=0.0)
    source.append(records[8:10])
    (tick,) = serving.pump_standing()
    assert tick.deferred is True
    # The pending delta survives the rejection for the next pump.
    assert query.pending_appends == 2
