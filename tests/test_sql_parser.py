"""Tests for the SQL parser."""

import pytest

from repro.errors import SQLSyntaxError
from repro.sql.ast_nodes import (
    Between,
    BinaryOp,
    CaseWhen,
    ColumnRef,
    CreateTable,
    DropTable,
    FuncCall,
    InList,
    InsertInto,
    IsNull,
    Like,
    Literal,
    Select,
    Star,
)
from repro.sql.parser import parse_sql


def test_simple_select_star():
    stmt = parse_sql("SELECT * FROM t")
    assert isinstance(stmt, Select)
    assert isinstance(stmt.items[0].expr, Star)
    assert stmt.table.name == "t"


def test_select_with_aliases():
    stmt = parse_sql("SELECT a AS x, b y FROM t z")
    assert stmt.items[0].alias == "x"
    assert stmt.items[1].alias == "y"
    assert stmt.table.alias == "z"


def test_operator_precedence_arithmetic():
    stmt = parse_sql("SELECT 1 + 2 * 3")
    expr = stmt.items[0].expr
    assert isinstance(expr, BinaryOp) and expr.op == "+"
    assert isinstance(expr.right, BinaryOp) and expr.right.op == "*"


def test_and_binds_tighter_than_or():
    stmt = parse_sql("SELECT * FROM t WHERE a OR b AND c")
    where = stmt.where
    assert where.op == "or"
    assert isinstance(where.right, BinaryOp) and where.right.op == "and"


def test_between_parses_bounds():
    stmt = parse_sql("SELECT * FROM t WHERE x BETWEEN 1 AND 5 AND y = 2")
    # outer AND with BETWEEN on the left
    assert stmt.where.op == "and"
    assert isinstance(stmt.where.left, Between)


def test_not_in_list():
    stmt = parse_sql("SELECT * FROM t WHERE x NOT IN (1, 2)")
    assert isinstance(stmt.where, InList) and stmt.where.negated


def test_is_not_null():
    stmt = parse_sql("SELECT * FROM t WHERE x IS NOT NULL")
    assert isinstance(stmt.where, IsNull) and stmt.where.negated


def test_like():
    stmt = parse_sql("SELECT * FROM t WHERE name LIKE 'fw:%'")
    assert isinstance(stmt.where, Like)


def test_group_by_having_order_limit():
    stmt = parse_sql(
        "SELECT a, COUNT(*) AS n FROM t GROUP BY a HAVING COUNT(*) > 1 "
        "ORDER BY n DESC, a LIMIT 10"
    )
    assert len(stmt.group_by) == 1
    assert stmt.having is not None
    assert stmt.order_by[0][1] is True  # DESC
    assert stmt.order_by[1][1] is False
    assert stmt.limit == 10


def test_count_star_and_distinct():
    stmt = parse_sql("SELECT COUNT(*), COUNT(DISTINCT a) FROM t")
    first, second = (item.expr for item in stmt.items)
    assert isinstance(first, FuncCall) and first.star
    assert isinstance(second, FuncCall) and second.distinct


def test_joins_inner_and_left():
    stmt = parse_sql(
        "SELECT * FROM a JOIN b ON a.id = b.id LEFT JOIN c ON a.id = c.id"
    )
    assert [join.kind for join in stmt.joins] == ["inner", "left"]


def test_qualified_column_and_star():
    stmt = parse_sql("SELECT t.a, t.* FROM t")
    assert isinstance(stmt.items[0].expr, ColumnRef)
    assert stmt.items[0].expr.table == "t"
    assert isinstance(stmt.items[1].expr, Star) and stmt.items[1].expr.table == "t"


def test_case_when():
    stmt = parse_sql("SELECT CASE WHEN a > 1 THEN 'big' ELSE 'small' END FROM t")
    expr = stmt.items[0].expr
    assert isinstance(expr, CaseWhen) and expr.otherwise is not None


def test_case_requires_when():
    with pytest.raises(SQLSyntaxError):
        parse_sql("SELECT CASE END FROM t")


def test_literals():
    stmt = parse_sql("SELECT NULL, TRUE, FALSE, 'str', 1.5")
    values = [item.expr.value for item in stmt.items]
    assert values == [None, True, False, "str", 1.5]
    assert all(isinstance(item.expr, Literal) for item in stmt.items)


def test_create_table():
    stmt = parse_sql("CREATE TABLE t (a INTEGER, b TEXT, c REAL)")
    assert isinstance(stmt, CreateTable)
    assert stmt.columns == [("a", "integer"), ("b", "text"), ("c", "real")]


def test_create_table_if_not_exists():
    stmt = parse_sql("CREATE TABLE IF NOT EXISTS t (a INT)")
    assert stmt.if_not_exists


def test_insert_multi_row_with_columns():
    stmt = parse_sql("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
    assert isinstance(stmt, InsertInto)
    assert stmt.columns == ["a", "b"]
    assert len(stmt.rows) == 2


def test_drop_table_if_exists():
    stmt = parse_sql("DROP TABLE IF EXISTS t")
    assert isinstance(stmt, DropTable) and stmt.if_exists


def test_trailing_garbage_rejected():
    with pytest.raises(SQLSyntaxError):
        parse_sql("SELECT 1 FROM t garbage extra ,")


def test_missing_statement_rejected():
    with pytest.raises(SQLSyntaxError):
        parse_sql("ALTER TABLE t ADD COLUMN x INTEGER")


def test_limit_requires_integer():
    with pytest.raises(SQLSyntaxError):
        parse_sql("SELECT * FROM t LIMIT 1.5")


def test_semicolon_tolerated():
    assert isinstance(parse_sql("SELECT 1;"), Select)
