"""Tests for sub-plan materialization: fingerprints, store, and reuse."""

import json

import pytest

from repro.data.records import DataRecord
from repro.data.schemas import Field, Schema
from repro.llm.simulated import SimulatedLLM
from repro.obs.metrics import MetricsRegistry
from repro.sem.config import QueryProcessorConfig
from repro.sem.dataset import Dataset
from repro.sem.materialize import (
    FINGERPRINT_VERSION,
    MaterializationStore,
    incremental_safe_prefix,
    prefix_fingerprints,
)

SCHEMA = Schema([Field("text", str)])

FILTER_A = "The text mentions suspicious deals."
FILTER_B = "The text is a firsthand account."
FILTER_C = "The text names a specific person."


def _records(n, prefix="u"):
    return [DataRecord({"text": f"text number {i}"}, uid=f"{prefix}{i}") for i in range(n)]


def _fingerprints(dataset, models=None, seed=0):
    chain = dataset.plan().operators()
    if models is None:
        models = [None] + ["gpt-4o"] * (len(chain) - 1)
    return prefix_fingerprints(chain, models, seed)


def _dataset(records, source_id="src"):
    return Dataset.from_records(records, SCHEMA, source_id=source_id)


def _config(store, seed=0, **kwargs):
    return QueryProcessorConfig(
        llm=SimulatedLLM(seed=seed),
        seed=seed,
        optimize=False,
        materialization_store=store,
        **kwargs,
    )


def _normalized(result):
    return [(r.uid, tuple(sorted(r.fields.items()))) for r in result.records]


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------


def test_fingerprint_stable_across_process_runs():
    # Hard-coded digest: fingerprints must be a pure function of the plan
    # shape, independent of process, hash seed, or object identity —
    # that's what makes a persisted store replayable in a later run.
    ds = _dataset(_records(1), source_id="stable-src").sem_filter(
        "Keep interesting records."
    )
    fps = _fingerprints(ds)
    assert fps == [None, "840652131ceb6065"]


def test_fingerprint_normalizes_instruction_text():
    base = _dataset(_records(1)).sem_filter("keep interesting records.")
    shouty = _dataset(_records(1)).sem_filter("  Keep   INTERESTING records. ")
    assert _fingerprints(base)[-1] == _fingerprints(shouty)[-1]


def test_fingerprint_commuting_filter_reorder_invariant():
    ab = _dataset(_records(1)).sem_filter(FILTER_A).sem_filter(FILTER_B)
    ba = _dataset(_records(1)).sem_filter(FILTER_B).sem_filter(FILTER_A)
    assert _fingerprints(ab)[-1] == _fingerprints(ba)[-1]


def test_fingerprint_cut_commuting_run_is_order_invariant():
    # A prefix boundary that slices a commuting run in half still
    # canonicalizes: {A, B} as a set decides the records, not the order.
    abc = (
        _dataset(_records(1))
        .sem_filter(FILTER_A)
        .sem_filter(FILTER_B)
        .sem_filter(FILTER_C)
    )
    bac = (
        _dataset(_records(1))
        .sem_filter(FILTER_B)
        .sem_filter(FILTER_A)
        .sem_filter(FILTER_C)
    )
    # Prefixes holding the same filter *subset* {A, B} agree even though
    # the third filter cuts the commuting run at the boundary...
    assert _fingerprints(abc)[2] == _fingerprints(bac)[2]
    assert _fingerprints(abc)[3] == _fingerprints(bac)[3]
    # ...but prefixes holding different subsets ({A} vs {B}) must differ.
    assert _fingerprints(abc)[1] != _fingerprints(bac)[1]


def test_fingerprint_sensitive_to_model_seed_and_source():
    ds = _dataset(_records(1)).sem_filter(FILTER_A)
    base = _fingerprints(ds)[-1]
    assert _fingerprints(ds, models=[None, "gpt-4o-mini"])[-1] != base
    assert _fingerprints(ds, seed=1)[-1] != base
    other_source = _dataset(_records(1), source_id="other").sem_filter(FILTER_A)
    assert _fingerprints(other_source)[-1] != base


def test_undescribed_python_op_poisons_suffix():
    ds = (
        _dataset(_records(1))
        .sem_filter(FILTER_A)
        .filter(lambda r: True)  # no description: not process-stable
        .sem_filter(FILTER_B)
    )
    fps = _fingerprints(ds)
    assert fps[1] is not None  # boundary before the lambda is fine
    assert fps[2] is None and fps[3] is None


def test_described_python_op_is_fingerprintable():
    ds = (
        _dataset(_records(1))
        .sem_filter(FILTER_A)
        .filter(lambda r: True, description="always true")
    )
    assert _fingerprints(ds)[-1] is not None


def test_free_prefix_not_materialized():
    ds = _dataset(_records(1)).project(["text"]).limit(5)
    assert _fingerprints(ds) == [None, None, None]


def test_incremental_safe_prefix_stops_at_whole_input_ops():
    ds = (
        _dataset(_records(1))
        .sem_filter(FILTER_A)
        .sem_map(Field("summary", str), "Summarize the text.")
        .sem_topk("most relevant", k=3)
        .sem_filter(FILTER_B)
    )
    chain = ds.plan().operators()
    assert incremental_safe_prefix(chain) == [True, True, True, False, False]


# ----------------------------------------------------------------------
# MaterializationStore
# ----------------------------------------------------------------------


def test_store_match_exact_delta_stale_miss():
    store = MaterializationStore()
    uids = ("u0", "u1", "u2")
    store.put("fp", _records(3), uids, "src", cost_usd=1.0, time_s=2.0)

    kind, entry = store.match("fp", uids)
    assert kind == "exact" and entry is not None

    kind, entry = store.match("fp", uids + ("u3",))
    assert kind == "delta" and entry is not None

    assert store.match("absent", uids) == ("miss", None)

    # Shrinkage is not append-only growth: the entry is dropped.
    kind, entry = store.match("fp", uids[:2])
    assert kind == "stale" and entry is None
    assert store.invalidations == 1
    assert len(store) == 0


def test_store_lru_eviction_and_hit_refresh():
    store = MaterializationStore(max_entries=2)
    for name in ("a", "b"):
        store.put(name, _records(1), ("u0",), "src", cost_usd=0.0, time_s=0.0)
    # Touch "a" so "b" becomes least recently used.
    _, entry = store.match("a", ("u0",))
    store.note_hit(entry, "exact")
    store.put("c", _records(1), ("u0",), "src", cost_usd=0.0, time_s=0.0)
    assert store.evictions == 1
    assert store.get("b") is None
    assert store.get("a") is not None and store.get("c") is not None


def test_store_counters_and_metrics_mirror():
    store = MaterializationStore()
    store.metrics = metrics = MetricsRegistry()
    store.put("fp", _records(2), ("u0", "u1"), "src", cost_usd=0.5, time_s=1.0)
    _, entry = store.match("fp", ("u0", "u1", "u2"))
    store.note_hit(entry, "delta", delta_records=1)
    store.note_miss()
    stats = store.stats()
    assert stats["stores"] == 1 and stats["hits"] == 1
    assert stats["delta_hits"] == 1 and stats["delta_records"] == 1
    assert stats["misses"] == 1
    counters = metrics.snapshot()["counters"]
    assert counters["materialization.stores"] == 1
    assert counters["materialization.hits"] == 1
    assert counters["materialization.delta_records"] == 1
    assert counters["materialization.misses"] == 1


def test_store_invalidate_sources():
    store = MaterializationStore()
    store.put("fp1", _records(1), ("u0",), "lake", cost_usd=0.0, time_s=0.0)
    store.put("fp2", _records(1), ("u0",), "view-1", cost_usd=0.0, time_s=0.0)
    store.put("fp3", _records(1), ("u0",), "other", cost_usd=0.0, time_s=0.0)
    assert store.invalidate_sources({"lake", "view-1"}) == 2
    assert len(store) == 1 and store.get("fp3") is not None


def test_store_save_load_roundtrip(tmp_path):
    store = MaterializationStore()
    records = [
        DataRecord(
            {"text": "hello"},
            uid="u0",
            annotations={"tag": True},
            source_id="src",
            parent_uids=("p0",),
        )
    ]
    store.put("fp", records, ("u0",), "src", cost_usd=0.25, time_s=3.0)
    path = tmp_path / "store.json"
    assert store.save(path) == 1

    fresh = MaterializationStore()
    assert fresh.load(path) == 1
    kind, entry = fresh.match("fp", ("u0",))
    assert kind == "exact"
    assert entry.cost_usd == 0.25
    loaded = entry.records[0]
    assert loaded.uid == "u0"
    assert loaded.fields == {"text": "hello"}
    assert loaded.annotations == {"tag": True}
    assert loaded.parent_uids == ("p0",)


def test_store_save_skips_unserializable_entries(tmp_path):
    store = MaterializationStore()
    store.put(
        "bad",
        [DataRecord({"obj": object()}, uid="u0")],
        ("u0",),
        "src",
        cost_usd=0.0,
        time_s=0.0,
    )
    store.put("good", _records(1), ("u0",), "src", cost_usd=0.0, time_s=0.0)
    path = tmp_path / "store.json"
    assert store.save(path) == 1
    fresh = MaterializationStore()
    assert fresh.load(path) == 1
    assert fresh.get("good") is not None and fresh.get("bad") is None


def test_store_load_rejects_version_mismatch(tmp_path):
    path = tmp_path / "store.json"
    path.write_text(
        json.dumps({"version": FINGERPRINT_VERSION + 1, "entries": []}),
        encoding="utf-8",
    )
    assert MaterializationStore().load(path) == 0


def test_store_validates_capacity():
    with pytest.raises(ValueError):
        MaterializationStore(max_entries=0)


# ----------------------------------------------------------------------
# End-to-end reuse through Dataset.run
# ----------------------------------------------------------------------


def _plan(records):
    return _dataset(records).sem_filter(FILTER_A).sem_filter(FILTER_B)


def test_warm_run_is_bit_identical_and_free():
    records = _records(30)
    store = MaterializationStore()
    cold, cold_report = _plan(records).run_with_report(_config(store))
    warm, warm_report = _plan(records).run_with_report(_config(store))
    assert cold_report.reused_prefix == 0
    assert warm_report.reused_prefix == 3
    assert warm_report.reuse_kind == "exact"
    assert _normalized(warm) == _normalized(cold)
    assert warm.total_cost_usd == 0.0
    assert store.hits == 1 and store.stores >= 1


def test_incremental_append_runs_only_the_delta():
    records = _records(30)
    v1, v2 = records[:20], records
    store = MaterializationStore()
    _plan(v1).run_with_report(_config(store))
    warm, warm_report = _plan(v2).run_with_report(_config(store))
    cold, _ = _plan(v2).run_with_report(_config(MaterializationStore()))
    assert warm_report.reuse_kind == "delta"
    assert warm_report.reuse_delta_records == 10
    assert _normalized(warm) == _normalized(cold)
    assert warm.total_cost_usd < cold.total_cost_usd
    # The delta re-capture upgraded the entry: a third run is exact.
    again, again_report = _plan(v2).run_with_report(_config(store))
    assert again_report.reuse_kind == "exact"
    assert again.total_cost_usd == 0.0
    assert _normalized(again) == _normalized(cold)


def test_commuted_filter_order_hits_the_same_entry():
    records = _records(30)
    store = MaterializationStore()
    _dataset(records).sem_filter(FILTER_A).sem_filter(FILTER_B).run(_config(store))
    swapped = _dataset(records).sem_filter(FILTER_B).sem_filter(FILTER_A)
    warm, report = swapped.run_with_report(_config(store))
    baseline, _ = swapped.run_with_report(_config(MaterializationStore()))
    assert report.reused_prefix == 3 and report.reuse_kind == "exact"
    assert _normalized(warm) == _normalized(baseline)


def test_shrunken_source_invalidates_instead_of_reusing():
    records = _records(30)
    store = MaterializationStore()
    _plan(records).run_with_report(_config(store))
    shrunk, report = _plan(records[:20]).run_with_report(_config(store))
    fresh, _ = _plan(records[:20]).run_with_report(_config(MaterializationStore()))
    assert report.reused_prefix == 0
    assert _normalized(shrunk) == _normalized(fresh)
    assert store.invalidations >= 1


def test_truncated_run_is_not_captured():
    records = _records(30)
    store = MaterializationStore()
    result = _plan(records).run(_config(store, max_cost_usd=0.001))
    assert result.truncated
    assert len(store) == 0


def test_reuse_works_with_optimizer_on():
    records = _records(30)
    store = MaterializationStore()

    def config():
        return QueryProcessorConfig(
            llm=SimulatedLLM(seed=0),
            seed=0,
            optimize=True,
            select_models=False,
            materialization_store=store,
        )

    cold, _ = _plan(records).run_with_report(config())
    warm, report = _plan(records).run_with_report(config())
    assert report.reused_prefix == 3 and report.reuse_kind == "exact"
    assert _normalized(warm) == _normalized(cold)
    assert warm.total_cost_usd == 0.0  # sampling is accounted separately


def test_explain_analyze_reports_reuse():
    records = _records(30)
    store = MaterializationStore()
    plan = _plan(records)
    cold_text = plan.explain(analyze=True, config=_config(store))
    assert "Reused" in cold_text and "reuse:" not in cold_text
    warm_text = plan.explain(analyze=True, config=_config(store))
    assert "MaterializedScan" in warm_text
    assert "reuse: 3-operator prefix served from materialization" in warm_text
    assert "(exact)" in warm_text


def test_reuse_span_emitted_when_traced():
    from repro.obs.tracer import Tracer

    records = _records(30)
    store = MaterializationStore()
    _plan(records).run(_config(store))
    tracer = Tracer()
    config = QueryProcessorConfig(
        llm=SimulatedLLM(seed=0, tracer=tracer),
        seed=0,
        optimize=False,
        materialization_store=store,
    )
    _plan(records).run(config)
    reuse_spans = [span for span in tracer.spans if span.kind == "reuse"]
    assert len(reuse_spans) == 1
    assert reuse_spans[0].attributes["prefix"] == 3
    assert reuse_spans[0].attributes["match"] == "exact"


def test_runtime_wires_store_only_when_reuse_enabled():
    from repro.core.runtime import AnalyticsRuntime

    on = AnalyticsRuntime(seed=0, reuse_contexts=True)
    assert on.program_config().materialization_store is on.materialization_store
    assert on.context_manager.materialization_store is on.materialization_store

    off = AnalyticsRuntime(seed=0, reuse_contexts=False)
    assert off.program_config().materialization_store is None
