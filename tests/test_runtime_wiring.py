"""Regression tests: explicit-LLM constructor wiring and cache bounds.

``AnalyticsRuntime(llm=...)`` historically dropped ``fault_config`` /
``retry_policy`` / ``tracer`` / ``metrics`` on the floor; the runtime now
wires them onto the provided client when the client has nothing configured
there, and raises on genuine conflicts.  Alongside: the answer cache is
LRU-bounded with eviction counters, and ``MaterializationStore.load``
enforces ``max_entries`` before materializing anything.
"""

from __future__ import annotations

import pytest

from repro.core.runtime import AnalyticsRuntime, AnswerCache
from repro.data.records import DataRecord
from repro.llm.faults import FaultConfig, FaultInjector, RetryPolicy
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.sem.materialize import MaterializationStore


# ---------------------------------------------------------------------------
# _wire_explicit_llm: kwargs reach an explicitly provided substrate
# ---------------------------------------------------------------------------


def test_tracer_wired_onto_explicit_llm(make_toy_llm):
    llm = make_toy_llm()
    tracer = Tracer()
    runtime = AnalyticsRuntime(llm=llm, tracer=tracer)
    assert runtime.llm.tracer is tracer
    assert tracer.clock is llm.clock


def test_metrics_wired_onto_explicit_llm(make_toy_llm):
    llm = make_toy_llm()
    metrics = MetricsRegistry()
    runtime = AnalyticsRuntime(llm=llm, metrics=metrics)
    assert llm.metrics is metrics
    assert llm.cache.metrics is metrics
    assert runtime.answers.metrics is metrics


def test_retry_policy_wired_when_default(make_toy_llm):
    llm = make_toy_llm()
    policy = RetryPolicy(max_attempts=5)
    AnalyticsRuntime(llm=llm, retry_policy=policy)
    assert llm.retry is policy


def test_fault_config_wired_when_unset(make_toy_llm):
    llm = make_toy_llm()
    config = FaultConfig(rate=0.2)
    AnalyticsRuntime(llm=llm, fault_config=config)
    assert llm.faults is not None
    assert llm.faults.config == config
    assert llm.faults.seed == llm.seed


def test_conflicting_tracer_raises(make_toy_llm):
    llm = make_toy_llm(tracer=Tracer())
    with pytest.raises(ValueError, match="tracer"):
        AnalyticsRuntime(llm=llm, tracer=Tracer())


def test_same_tracer_is_not_a_conflict(make_toy_llm):
    tracer = Tracer()
    llm = make_toy_llm(tracer=tracer)
    runtime = AnalyticsRuntime(llm=llm, tracer=tracer)
    assert runtime.llm.tracer is tracer


def test_conflicting_retry_policy_raises(make_toy_llm):
    llm = make_toy_llm(retry=RetryPolicy(max_attempts=7))
    with pytest.raises(ValueError, match="retry"):
        AnalyticsRuntime(llm=llm, retry_policy=RetryPolicy(max_attempts=2))


def test_conflicting_fault_config_raises(make_toy_llm):
    llm = make_toy_llm(
        faults=FaultInjector(FaultConfig(rate=0.5), seed=0)
    )
    with pytest.raises(ValueError, match="fault"):
        AnalyticsRuntime(llm=llm, fault_config=FaultConfig(rate=0.1))


def test_matching_fault_config_is_not_a_conflict(make_toy_llm):
    config = FaultConfig(rate=0.5)
    llm = make_toy_llm(faults=FaultInjector(config, seed=0))
    runtime = AnalyticsRuntime(llm=llm, fault_config=FaultConfig(rate=0.5))
    assert runtime.llm.faults is llm.faults


def test_conflicting_metrics_raises(make_toy_llm):
    llm = make_toy_llm(metrics=MetricsRegistry())
    with pytest.raises(ValueError, match="metrics"):
        AnalyticsRuntime(llm=llm, metrics=MetricsRegistry())


# ---------------------------------------------------------------------------
# AnswerCache: LRU bound + eviction accounting
# ---------------------------------------------------------------------------


def _vec(x: float, y: float) -> list[float]:
    return [x, y]


def test_answer_cache_enforces_lru_bound():
    cache = AnswerCache(max_entries=2)
    cache.put("ctx", _vec(1, 0), "a")
    cache.put("ctx", _vec(0, 1), "b")
    # Touch the oldest entry so it becomes most-recent.
    assert cache.lookup("ctx", _vec(1, 0), 0.99) == "a"
    cache.put("ctx", _vec(-1, 0), "c")
    assert len(cache) == 2
    assert cache.evictions == 1
    # "b" (least recently used) was evicted; "a" survived the touch.
    assert cache.lookup("ctx", _vec(1, 0), 0.99) == "a"
    assert cache.lookup("ctx", _vec(0, 1), 0.99) is None


def test_answer_cache_stats_and_metrics_mirror():
    metrics = MetricsRegistry()
    cache = AnswerCache(max_entries=1)
    cache.metrics = metrics
    cache.put("ctx", _vec(1, 0), "a")
    cache.put("ctx", _vec(0, 1), "b")
    cache.lookup("ctx", _vec(0, 1), 0.99)
    cache.lookup("ctx", _vec(1, 0), 0.99)
    cache.clear()
    stats = cache.stats()
    assert stats == {
        "entries": 0,
        "hits": 1,
        "misses": 1,
        "stores": 2,
        "evictions": 1,
        "clears": 1,
        "cleared_entries": 1,
    }
    counters = metrics.snapshot()["counters"]
    assert counters["answers.stores"] == 2
    assert counters["answers.evictions"] == 1
    assert counters["answers.hits"] == 1
    assert counters["answers.misses"] == 1
    assert counters["answers.clears"] == 1
    assert counters["answers.cleared_entries"] == 1


def test_answer_cache_rejects_zero_capacity():
    with pytest.raises(ValueError):
        AnswerCache(max_entries=0)


def test_runtime_answer_cache_size_plumbs_through(legal_bundle):
    runtime = AnalyticsRuntime.for_bundle(legal_bundle, answer_cache_size=3)
    assert runtime.answers.max_entries == 3


# ---------------------------------------------------------------------------
# MaterializationStore.load: capacity enforced before materialization
# ---------------------------------------------------------------------------


def _entry_records(tag: str) -> list[DataRecord]:
    return [DataRecord({"body": tag}, uid=f"{tag}-rec")]


def test_load_enforces_max_entries(tmp_path):
    big = MaterializationStore(max_entries=8)
    for index in range(4):
        big.put(
            f"fp-{index}",
            _entry_records(f"t{index}"),
            (f"src-{index}",),
            "src",
            cost_usd=0.1,
            time_s=1.0,
        )
    path = tmp_path / "store.json"
    assert big.save(path) == 4

    small = MaterializationStore(max_entries=2)
    assert small.load(path) == 2
    assert len(small) == 2
    # Save order is LRU order (last = most recent): the newest two survive.
    assert {entry.fingerprint for entry in small.entries()} == {"fp-2", "fp-3"}
    assert small.evictions == 2
    assert small.stats()["evictions"] == 2


def test_load_within_capacity_evicts_nothing(tmp_path):
    big = MaterializationStore()
    big.put("fp-a", _entry_records("a"), ("u",), "src", cost_usd=0.1, time_s=1.0)
    path = tmp_path / "store.json"
    big.save(path)

    fresh = MaterializationStore(max_entries=4)
    assert fresh.load(path) == 1
    assert fresh.evictions == 0
