"""Tests for the plan-space differential-testing harness (``repro.qa``)."""

import json

import pytest

from repro.qa.bundle import ReplayBundle
from repro.qa.configs import ConfigSpec, config_matrix
from repro.qa.corpus import CorpusSpec, build_corpus
from repro.qa.fuzzer import FuzzCase, PlanFuzzer
from repro.qa.mutations import MUTATIONS, mutation_by_name
from repro.qa.oracles import (
    Violation,
    check_budget,
    check_determinism,
    check_exec_equivalence,
    evaluate,
)
from repro.qa.runner import CaseRun, Observation, run_case, run_spec
from repro.qa.shrinker import shrink


# ---------------------------------------------------------------------------
# Fuzzer: determinism, serde, structural invariants
# ---------------------------------------------------------------------------


def test_fuzzer_is_a_pure_function_of_seed_and_index():
    first = [case.to_dict() for case in PlanFuzzer(seed=7).cases(6)]
    second = [case.to_dict() for case in PlanFuzzer(seed=7).cases(6)]
    assert first == second


def test_fuzzer_seeds_explore_different_plan_spaces():
    plans_a = [case.plan.to_dict() for case in PlanFuzzer(seed=0).cases(8)]
    plans_b = [case.plan.to_dict() for case in PlanFuzzer(seed=1).cases(8)]
    assert plans_a != plans_b


def test_case_serde_round_trips_through_json():
    case = PlanFuzzer(seed=3).case(2)
    payload = json.loads(json.dumps(case.to_dict()))
    assert FuzzCase.from_dict(payload) == case


def test_generated_plans_respect_structural_invariants():
    fuzzer = PlanFuzzer(seed=1, max_ops=4)
    for case in fuzzer.cases(25):
        ops = case.plan.ops
        assert ops, "plans are never empty"
        joins = [op for op in ops if op["op"] == "sem_join"]
        assert len(joins) <= 1
        # retrieve prefix + body + terminal decoration; join sub-ops ride
        # inside the one join entry.
        assert case.plan.op_count() <= fuzzer.max_ops + 2 + 2


def test_corpus_generation_is_deterministic():
    spec = CorpusSpec(seed=42, n_records=16)
    first = [(r.uid, dict(r.fields)) for r in build_corpus(spec).source()]
    second = [(r.uid, dict(r.fields)) for r in build_corpus(spec).source()]
    assert first == second
    assert len(first) == 16


# ---------------------------------------------------------------------------
# Config matrix
# ---------------------------------------------------------------------------


def _matrix_for(seed, index=0):
    case = PlanFuzzer(seed=seed).case(index)
    return case, config_matrix(case.plan, case.case_seed)


def test_config_specs_serde_round_trip():
    _, specs = _matrix_for(seed=0)
    for spec in specs:
        payload = json.loads(json.dumps(spec.to_dict()))
        assert ConfigSpec.from_dict(payload) == spec


def test_matrix_always_contains_the_exec_class_core():
    _, specs = _matrix_for(seed=0)
    names = {spec.name for spec in specs}
    assert {"baseline", "barrier", "small-batch", "serial"} <= names
    assert sum(1 for spec in specs if spec.name == "baseline") == 1


def test_matrix_budget_and_fault_cells_require_semantic_ops():
    fuzzer = PlanFuzzer(seed=2)
    for index in range(10):
        case = fuzzer.case(index)
        specs = config_matrix(case.plan, case.case_seed)
        has_budget = any(spec.answer_class == "budget" for spec in specs)
        has_fault = any(spec.answer_class == "fault" for spec in specs)
        semantic = case.plan.semantic_op_count() > 0
        assert has_budget == semantic
        assert has_fault == semantic


def test_matrix_optimizer_cells_skip_join_plans():
    fuzzer = PlanFuzzer(seed=4)
    for index in range(12):
        case = fuzzer.case(index)
        specs = config_matrix(case.plan, case.case_seed)
        opt_names = {s.name for s in specs if s.optimize}
        if case.plan.has_join():
            # Joins are bounded without sampling; only the probe cell runs.
            assert "optimized-maxq" not in opt_names
        else:
            assert "optimized-maxq" in opt_names


# ---------------------------------------------------------------------------
# Runner + oracles on real cases
# ---------------------------------------------------------------------------


def test_run_spec_is_deterministic_for_the_baseline():
    case, specs = _matrix_for(seed=5, index=1)
    baseline = next(spec for spec in specs if spec.name == "baseline")
    first = run_spec(case, baseline)
    second = run_spec(case, baseline)
    assert first.error is None
    assert first.records == second.records
    assert first.total_cost_usd == second.total_cost_usd
    assert first.total_time_s == second.total_time_s


@pytest.mark.parametrize("index", [0, 1, 2])
def test_oracles_pass_on_healthy_cases(index):
    case = PlanFuzzer(seed=0).case(index)
    violations = evaluate(run_case(case))
    assert violations == [], [str(v) for v in violations]


# ---------------------------------------------------------------------------
# Oracle unit behavior on synthetic observations
# ---------------------------------------------------------------------------


def _obs(name, answer_class, **kwargs):
    spec = ConfigSpec(name=name, answer_class=answer_class)
    return Observation(spec=spec, **kwargs)


def test_check_determinism_flags_diverging_reruns():
    run = CaseRun(
        case=None,
        observations={
            "baseline": [
                _obs("baseline", "exec", records=[("a", ())]),
                _obs("baseline", "exec", records=[("b", ())]),
            ]
        },
    )
    assert any(v.oracle == "determinism" for v in check_determinism(run))


def test_check_exec_equivalence_flags_record_mismatch():
    run = CaseRun(
        case=None,
        observations={
            "baseline": [_obs("baseline", "exec", records=[("a", ())])],
            "barrier": [_obs("barrier", "exec", records=[("z", ())])],
        },
    )
    fired = {v.oracle for v in check_exec_equivalence(run)}
    assert fired == {"exec-equivalence"}


def test_check_budget_flags_overshoot_beyond_the_saga_allowance():
    over = _obs(
        "budget-tight",
        "budget",
        total_cost_usd=1.0,
        max_cost_usd=0.1,
        max_event_cost_usd=0.01,
        max_attempts=3,
    )
    run = CaseRun(case=None, observations={"budget-tight": [over]})
    assert any(v.oracle == "budget-cap" for v in check_budget(run))

    # Within cap + allowance: legal.
    within = _obs(
        "budget-tight",
        "budget",
        total_cost_usd=0.12,
        max_cost_usd=0.1,
        max_event_cost_usd=0.01,
        max_attempts=3,
    )
    run = CaseRun(case=None, observations={"budget-tight": [within]})
    assert check_budget(run) == []


# ---------------------------------------------------------------------------
# Mutations, shrinking, replay bundles
# ---------------------------------------------------------------------------


def test_mutation_registry_and_lookup():
    assert "drop-budget-check" in MUTATIONS
    assert "scramble-cell-order" in MUTATIONS
    assert mutation_by_name("drop-budget-check").expected_oracle == "budget-cap"
    with pytest.raises(ValueError):
        mutation_by_name("no-such-mutation")


@pytest.mark.slow
def test_seeded_mutation_is_caught_and_shrinks_small():
    # The acceptance bug: a dropped budget check must be caught by the
    # budget oracle and delta-debugged down to a tiny repro.
    mutation = mutation_by_name("drop-budget-check")
    case = PlanFuzzer(seed=0).case(0)
    violations = evaluate(run_case(case, mutation=mutation))
    assert any(v.oracle == mutation.expected_oracle for v in violations)

    result = shrink(case, mutation=mutation)
    assert result.violations, "shrunk case must still fail"
    assert result.case.plan.op_count() <= 3
    assert {v.oracle for v in result.violations} & {mutation.expected_oracle}


@pytest.mark.slow
def test_replay_bundle_round_trips_and_reproduces(tmp_path):
    mutation = mutation_by_name("drop-budget-check")
    case = PlanFuzzer(seed=0).case(0)
    violations = evaluate(run_case(case, mutation=mutation))
    bundle = ReplayBundle.capture(case, violations, mutation=mutation.name)

    path = bundle.save(tmp_path / "bundle.json")
    loaded = ReplayBundle.load(path)
    assert loaded.case == case
    assert loaded.mutation == mutation.name
    assert loaded.expected_oracles == sorted({v.oracle for v in violations})

    replayed, reproduced = loaded.replay()
    assert reproduced
    assert {v.oracle for v in replayed} & set(loaded.expected_oracles)


def test_clean_capture_replays_clean():
    case = PlanFuzzer(seed=0).case(1)
    bundle = ReplayBundle.capture(case, [])
    replayed, reproduced = bundle.replay()
    assert reproduced and replayed == []


def test_violation_formatting_names_oracle_and_cell():
    violation = Violation("budget-cap", "budget-tight", "spent too much")
    assert str(violation) == "[budget-cap] budget-tight: spent too much"


# ---------------------------------------------------------------------------
# CLI: fuzz -> bundle -> replay, in-process
# ---------------------------------------------------------------------------


@pytest.mark.slow
def test_cli_fuzz_is_clean_and_deterministic(tmp_path, capsys):
    from repro.qa.cli import main

    argv = ["fuzz", "--n", "3", "--seed", "0", "--out", str(tmp_path)]
    assert main(argv) == 0
    first = capsys.readouterr().out
    assert main(argv) == 0
    second = capsys.readouterr().out
    assert "0 failing" in first
    # Identical modulo the wall-clock timing suffix.
    strip = lambda out: [line.split(" (")[0] for line in out.splitlines()]  # noqa: E731
    assert strip(first) == strip(second)
    assert not list(tmp_path.iterdir()), "clean fuzz writes no bundles"


@pytest.mark.slow
def test_cli_mutated_fuzz_writes_bundle_that_replays(tmp_path, capsys):
    from repro.qa.cli import main

    code = main(
        ["fuzz", "--n", "1", "--seed", "0", "--mutate", "drop-budget-check",
         "--out", str(tmp_path)]
    )
    assert code == 1
    bundles = sorted(tmp_path.glob("*.json"))
    assert bundles, "failing fuzz must capture a replay bundle"
    capsys.readouterr()

    assert main(["replay", str(bundles[0])]) == 0
    out = capsys.readouterr().out
    assert "reproduced" in out


def test_cli_rejects_unknown_mutation(capsys):
    from repro.qa.cli import main

    with pytest.raises(SystemExit):
        main(["fuzz", "--n", "1", "--mutate", "nope"])


def test_main_cli_delegates_qa_subcommand(tmp_path, capsys):
    from repro.cli import main

    assert main(["qa", "fuzz", "--n", "1", "--seed", "0",
                 "--out", str(tmp_path)]) == 0
    assert "fuzz:" in capsys.readouterr().out
