"""Tests for natural-language program synthesis."""

from repro.core.synthesis import synthesize_program
from repro.data.datasets import enron as en
from repro.data.datasets import kramabench as kb


def test_enron_query_synthesis():
    spec = synthesize_program(en.QUERY_RELEVANT)
    assert len(spec.filters) == 1
    assert spec.filters[0].startswith("The email contains firsthand discussion")
    assert [name for name, _ in spec.extracts] == ["sender", "subject", "summary"]


def test_enron_filter_resolves_to_relevant_intent(enron_bundle):
    spec = synthesize_program(en.QUERY_RELEVANT)
    intent = enron_bundle.registry.resolve(spec.filters[0])
    assert intent is not None and intent.key == en.INTENT_RELEVANT


def test_enron_extractions_resolve(enron_bundle):
    spec = synthesize_program(en.QUERY_RELEVANT)
    keys = {
        name: enron_bundle.registry.resolve(instruction).key
        for name, instruction in spec.extracts
    }
    assert keys == {
        "sender": en.INTENT_SENDER,
        "subject": en.INTENT_SUBJECT,
        "summary": en.INTENT_SUMMARY,
    }


def test_kramabench_program_instruction_synthesis(legal_bundle):
    instruction = (
        "Find the files which report national identity theft statistics "
        "for the year 2024 and extract the number of identity theft "
        "reports in the year 2024."
    )
    spec = synthesize_program(instruction)
    assert spec.filters == [
        "The file reports national identity theft statistics for the year 2024."
    ]
    assert spec.extracts == [
        ("value", "Extract the number of identity theft reports in the year 2024.")
    ]
    assert legal_bundle.registry.resolve(spec.filters[0]).key == kb.INTENT_NATIONAL_2024
    assert (
        legal_bundle.registry.resolve(spec.extracts[0][1]).key == kb.INTENT_IT_2024_VALUE
    )


def test_bare_extract_instruction():
    spec = synthesize_program("Extract the total revenue for fiscal 2023")
    assert spec.filters == []
    assert spec.extracts[0][0] == "value"
    assert spec.extracts[0][1].startswith("Extract the total revenue")


def test_plural_noun_singularized_and_verb_conjugated():
    spec = synthesize_program("Return all listings which describe a modern home")
    assert spec.filters == ["The listing describes a modern home."]


def test_fallback_whole_instruction_as_filter():
    spec = synthesize_program("The document mentions quarterly earnings")
    assert spec.filters == ["The document mentions quarterly earnings."]
    assert spec.extracts == []


def test_describe_renders_pipeline():
    spec = synthesize_program(en.QUERY_RELEVANT)
    text = spec.describe()
    assert "sem_filter" in text and "sem_map" in text


def test_trailing_period_normalized():
    a = synthesize_program("Return all emails which mention the merger")
    b = synthesize_program("Return all emails which mention the merger.")
    assert a.filters == b.filters
