"""Tests for the trace-fed statistics store (learned operator priors)."""

import json

import pytest

from repro.obs import MetricsRegistry, OperatorPrior, StatisticsStore, Tracer
from repro.obs.stats import STATS_VERSION


def _observe(store, key="k1", records_in=10, records_out=5, **kwargs):
    return store.observe(
        key,
        "SemFilterOp",
        "gpt-mini",
        "corpus-1",
        "",
        records_in=records_in,
        records_out=records_out,
        **kwargs,
    )


# ---------------------------------------------------------------------------
# Construction and validation
# ---------------------------------------------------------------------------


class TestConstruction:
    def test_rejects_bad_decay(self):
        with pytest.raises(ValueError, match="decay"):
            StatisticsStore(decay=0.0)
        with pytest.raises(ValueError, match="decay"):
            StatisticsStore(decay=1.5)

    def test_rejects_bad_min_observations(self):
        with pytest.raises(ValueError, match="min_observations"):
            StatisticsStore(min_observations=0)

    def test_rejects_bad_max_entries(self):
        with pytest.raises(ValueError, match="max_entries"):
            StatisticsStore(max_entries=0)


# ---------------------------------------------------------------------------
# Decayed online updates
# ---------------------------------------------------------------------------


class TestObserve:
    def test_first_observation_sets_fields_directly(self):
        store = StatisticsStore()
        prior = _observe(
            store,
            records_in=10,
            records_out=4,
            cost_usd=0.5,
            time_s=2.0,
            llm_calls=10,
            cached_calls=5,
            retried_calls=2,
            failed_records=1,
            tokens=300,
        )
        assert prior.observations == 1
        assert prior.selectivity == pytest.approx(0.4)
        assert prior.rows_in == 10.0
        assert prior.rows_out == 4.0
        assert prior.tokens_per_record == pytest.approx(30.0)
        assert prior.cost_per_record == pytest.approx(0.05)
        assert prior.latency_per_record == pytest.approx(0.2)
        assert prior.latency_per_call == pytest.approx(0.2)
        assert prior.retry_rate == pytest.approx(0.2)
        assert prior.failure_rate == pytest.approx(0.1)
        assert prior.cache_hit_ratio == pytest.approx(0.5)

    def test_second_observation_blends_with_decay(self):
        store = StatisticsStore(decay=0.3)
        _observe(store, records_in=10, records_out=4)
        prior = _observe(store, records_in=10, records_out=8)
        # 0.4 + 0.3 * (0.8 - 0.4) = 0.52
        assert prior.observations == 2
        assert prior.selectivity == pytest.approx(0.52)

    def test_zero_input_observation_is_dropped(self):
        store = StatisticsStore()
        assert _observe(store, records_in=0, records_out=0) is None
        assert len(store) == 0
        assert store.observations == 0

    def test_no_llm_calls_means_zero_call_rates(self):
        store = StatisticsStore()
        prior = _observe(store, records_in=5, records_out=5, llm_calls=0)
        assert prior.latency_per_call == 0.0
        assert prior.retry_rate == 0.0
        assert prior.cache_hit_ratio == 0.0

    def test_lru_eviction_drops_least_recently_used(self):
        store = StatisticsStore(max_entries=2)
        _observe(store, key="a")
        _observe(store, key="b")
        store.prior("a")  # touch: "b" becomes the eviction candidate
        _observe(store, key="c")
        assert store.prior("a") is not None
        assert store.prior("b") is None
        assert store.prior("c") is not None
        assert store.evictions == 1


# ---------------------------------------------------------------------------
# Lookups, the evidence floor, and metrics mirroring
# ---------------------------------------------------------------------------


class TestLookup:
    def test_prior_counts_lookups_and_hits(self):
        store = StatisticsStore()
        _observe(store, key="k1")
        assert store.prior("k1") is not None
        assert store.prior("missing") is None
        assert store.prior(None) is None  # unkeyed: not even a lookup
        assert store.lookups == 2
        assert store.hits == 1

    def test_usable_prior_enforces_min_observations(self):
        store = StatisticsStore(min_observations=2)
        _observe(store, key="k1")
        assert store.prior("k1") is not None
        assert store.usable_prior("k1") is None
        _observe(store, key="k1")
        assert store.usable_prior("k1") is not None

    def test_metrics_mirror_counts_observations_lookups_hits(self):
        store = StatisticsStore()
        metrics = MetricsRegistry()
        store.metrics = metrics
        _observe(store, key="k1")
        store.prior("k1")
        store.prior("missing")
        counters = metrics.snapshot()["counters"]
        assert counters["stats.observations"] == 1
        assert counters["stats.lookups"] == 2
        assert counters["stats.hits"] == 1

    def test_stats_summary(self):
        store = StatisticsStore()
        _observe(store, key="k1")
        store.prior("k1")
        summary = store.stats()
        assert summary["entries"] == 1
        assert summary["observations"] == 1
        assert summary["hits"] == 1


# ---------------------------------------------------------------------------
# Ingestion paths
# ---------------------------------------------------------------------------


class _FakeStats:
    def __init__(self, label, records_in=10, records_out=5):
        self.label = label
        self.records_in = records_in
        self.records_out = records_out
        self.cost_usd = 0.1
        self.time_s = 1.0
        self.llm_calls = records_in
        self.cached_calls = 0
        self.retried_calls = 0
        self.failed_records = 0
        self.input_tokens = 100
        self.output_tokens = 20


def _entry(key, label):
    return {
        "key": key,
        "kind": "SemFilterOp",
        "model": "gpt-mini",
        "dataset": "corpus-1",
        "scope": "",
        "label": label,
    }


class TestIngestRun:
    def test_ingests_aligned_positions(self):
        store = StatisticsStore()
        stats = [_FakeStats("SemFilter(a) [gpt-mini]"), _FakeStats("SemMap(b)")]
        plan = [_entry("k1", "SemFilter(a)"), None]
        assert store.ingest_run(stats, plan) == 1
        assert store.prior("k1").selectivity == pytest.approx(0.5)

    def test_label_mismatch_is_skipped(self):
        store = StatisticsStore()
        stats = [_FakeStats("SemFilter(other)")]
        plan = [_entry("k1", "SemFilter(a)")]
        assert store.ingest_run(stats, plan) == 0
        assert len(store) == 0

    def test_emits_stats_ingest_span_on_enabled_tracer(self):
        store = StatisticsStore()
        tracer = Tracer()
        stats = [_FakeStats("SemFilter(a)")]
        plan = [_entry("k1", "SemFilter(a)")]
        store.ingest_run(stats, plan, tracer=tracer)
        spans = tracer.by_kind("stats.ingest")
        assert len(spans) == 1
        assert spans[0].attributes["observations"] == 1
        assert spans[0].attributes["store_size"] == 1
        assert spans[0].end_s == spans[0].start_s  # zero-duration marker


class TestIngestSpans:
    def test_reingests_operator_spans(self):
        from repro.utils.clock import VirtualClock

        clock = VirtualClock()
        tracer = Tracer(clock)
        with tracer.span(
            "SemFilter(a)",
            kind="operator",
            stats=_entry("k1", "SemFilter(a)"),
            records_in=10,
            records_out=3,
            cost_usd=0.2,
            llm_calls=10,
            tokens=500,
        ):
            clock.advance(4.0)
        store = StatisticsStore()
        assert store.ingest_spans(tracer.spans) == 1
        prior = store.prior("k1")
        assert prior.selectivity == pytest.approx(0.3)
        assert prior.latency_per_record == pytest.approx(0.4)

    def test_reingests_pipeline_section_stage_stats(self):
        tracer = Tracer()
        with tracer.span(
            "section",
            kind="pipeline-section",
            stage_stats=[
                {
                    "stats": _entry("k1", "SemFilter(a)"),
                    "records_in": 8,
                    "records_out": 2,
                    "time_s": 1.0,
                },
                {
                    "stats": _entry("k2", "SemFilter(b)"),
                    "records_in": 2,
                    "records_out": 2,
                    "time_s": 0.5,
                },
            ],
        ):
            pass
        store = StatisticsStore()
        assert store.ingest_spans(tracer.spans) == 2
        assert store.prior("k1").selectivity == pytest.approx(0.25)
        assert store.prior("k2").selectivity == pytest.approx(1.0)

    def test_ignores_unrelated_spans(self):
        tracer = Tracer()
        with tracer.span("query", kind="query"):
            with tracer.span("SemFilter(a)", kind="operator"):  # no stats attr
                pass
        store = StatisticsStore()
        assert store.ingest_spans(tracer.spans) == 0


# ---------------------------------------------------------------------------
# Persistence
# ---------------------------------------------------------------------------


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        store = StatisticsStore()
        _observe(store, key="k1", records_in=10, records_out=4, cost_usd=0.5)
        _observe(store, key="k1", records_in=10, records_out=8)
        _observe(store, key="k2", records_in=6, records_out=6)
        path = tmp_path / "stats.json"
        assert store.save(path) == 2

        fresh = StatisticsStore()
        assert fresh.load(path) == 2
        for original, loaded in zip(store.priors(), fresh.priors()):
            assert original.to_dict() == loaded.to_dict()

    def test_version_mismatch_loads_nothing(self, tmp_path):
        store = StatisticsStore()
        _observe(store, key="k1")
        path = tmp_path / "stats.json"
        store.save(path)
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["version"] = STATS_VERSION + 1
        path.write_text(json.dumps(payload), encoding="utf-8")

        fresh = StatisticsStore()
        assert fresh.load(path) == 0
        assert len(fresh) == 0

    def test_load_enforces_max_entries(self, tmp_path):
        store = StatisticsStore()
        for index in range(5):
            _observe(store, key=f"k{index}")
        path = tmp_path / "stats.json"
        store.save(path)

        small = StatisticsStore(max_entries=2)
        assert small.load(path) == 2
        # Save order is LRU order: the newest two survive.
        assert [p.key for p in small.priors()] == ["k3", "k4"]
        assert small.evictions == 3

    def test_clear_empties_the_store(self):
        store = StatisticsStore()
        _observe(store, key="k1")
        store.clear()
        assert len(store) == 0


# ---------------------------------------------------------------------------
# OperatorPrior serde
# ---------------------------------------------------------------------------


def test_operator_prior_dict_round_trip():
    prior = OperatorPrior(
        key="k",
        kind="SemFilterOp",
        model="m",
        dataset="d",
        scope="tenant-a",
        observations=3,
        selectivity=0.25,
        cost_per_record=0.01,
    )
    assert OperatorPrior.from_dict(prior.to_dict()) == prior


# ---------------------------------------------------------------------------
# Dataset-version maintenance (standing-query change feed)
# ---------------------------------------------------------------------------


class TestDatasetVersioning:
    def test_append_decays_observation_confidence(self):
        store = StatisticsStore()
        for _ in range(8):
            prior = _observe(store)
        assert prior.observations == 8
        touched = store.note_dataset_version("corpus-1", 1, change="append")
        assert touched == 1
        assert prior.observations == 4
        assert store.dataset_decays == 1
        # Learned statistics survive the decay; only confidence drops.
        assert prior.selectivity == pytest.approx(0.5)

    def test_update_invalidates_dataset_priors_only(self):
        store = StatisticsStore()
        _observe(store, key="mine")
        store.observe(
            "other", "SemFilterOp", "gpt-mini", "corpus-2", "",
            records_in=10, records_out=5,
        )
        dropped = store.note_dataset_version("corpus-1", 2, change="update")
        assert dropped == 1
        assert store.usable_prior("mine") is None
        assert store.usable_prior("other") is not None
        assert store.dataset_invalidations == 1

    def test_repeat_version_is_a_no_op(self):
        store = StatisticsStore()
        for _ in range(4):
            prior = _observe(store)
        assert store.note_dataset_version("corpus-1", 5) == 1
        assert prior.observations == 2
        # Forwarding the same event twice must not double-penalize.
        assert store.note_dataset_version("corpus-1", 5) == 0
        assert prior.observations == 2

    def test_empty_dataset_name_is_ignored(self):
        store = StatisticsStore()
        _observe(store)
        assert store.note_dataset_version("", 1) == 0

    def test_singleton_priors_never_decay_below_one(self):
        store = StatisticsStore()
        prior = _observe(store)
        assert prior.observations == 1
        assert store.note_dataset_version("corpus-1", 3) == 0
        assert prior.observations == 1

    def test_stats_summary_exposes_maintenance_counters(self):
        store = StatisticsStore()
        for _ in range(2):
            _observe(store)
        store.note_dataset_version("corpus-1", 1, change="append")
        store.note_dataset_version("corpus-1", 2, change="update")
        summary = store.stats()
        assert summary["dataset_decays"] == 1
        assert summary["dataset_invalidations"] == 1
