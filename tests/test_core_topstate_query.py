"""Tests for the second (state-level argmax) Kramabench-style query."""

import pytest

from repro.core.runtime import AnalyticsRuntime
from repro.data.datasets import kramabench as kb
from repro.llm.oracle import SemanticOracle


def test_state_level_intent_resolution(legal_bundle):
    assert (
        legal_bundle.registry.resolve(kb.FILTER_STATE_LEVEL).key
        == kb.INTENT_STATE_LEVEL
    )


def test_state_level_annotation_only_on_state_files(legal_bundle):
    oracle = SemanticOracle(legal_bundle.registry)
    positives = [
        record["filename"]
        for record in legal_bundle.records()
        if oracle.judge_filter(kb.FILTER_STATE_LEVEL, record).truth
        and oracle.judge_filter(kb.FILTER_STATE_LEVEL, record).resolved
    ]
    assert len(positives) == 50
    assert all(name.startswith("identity_theft_reports_") for name in positives)


def test_every_record_judgeable_on_state_level(legal_bundle):
    oracle = SemanticOracle(legal_bundle.registry)
    for record in legal_bundle.records():
        assert oracle.judge_filter(kb.FILTER_STATE_LEVEL, record).resolved, (
            record["filename"]
        )


def test_top_state_ground_truth_consistent(legal_bundle):
    top = legal_bundle.ground_truth["top_state_2024"]
    top_value = legal_bundle.ground_truth["top_state_2024_reports"]
    annotated = {
        record["filename"]: record.annotations.get(kb.INTENT_IT_2024_VALUE)
        for record in legal_bundle.records()
        if record.annotations.get(kb.INTENT_STATE_LEVEL)
    }
    assert annotated[f"identity_theft_reports_{top}_2020_2024.csv"] == top_value
    assert max(annotated.values()) == top_value


@pytest.mark.parametrize("seed", [0, 3])
def test_compute_answers_top_state_query(legal_bundle, seed):
    runtime = AnalyticsRuntime.for_bundle(legal_bundle, seed=seed)
    context = runtime.make_context(legal_bundle)
    result = runtime.compute(context, kb.QUERY_TOP_STATE)
    assert isinstance(result.answer, dict)
    assert result.answer["state"] == legal_bundle.ground_truth["top_state_2024"]
    assert result.answer["reports"] == pytest.approx(
        legal_bundle.ground_truth["top_state_2024_reports"]
    )


def test_compute_verifies_against_source(legal_bundle):
    runtime = AnalyticsRuntime.for_bundle(legal_bundle, seed=1)
    context = runtime.make_context(legal_bundle)
    result = runtime.compute(context, kb.QUERY_TOP_STATE)
    # The accepted answer carries no 'verified': False marker — it passed
    # the source-text verification step.
    assert "verified" not in result.answer
    raw_code = "\n".join(step.code for step in result.agent.trace.steps)
    assert "get_item" in raw_code  # the verification read
