"""Edge-case tests across subsystems."""

import pytest

from repro.core.operators import _records_from_answer
from repro.core.context import Context
from repro.data.records import DataRecord
from repro.data.schemas import Field, Schema
from repro.llm.oracle import SemanticOracle
from repro.llm.simulated import SimulatedLLM
from repro.sem import Dataset, QueryProcessorConfig
from repro.sem.physical import AGG_TEXT_BUDGET, ExecutionContext, PhysSemAgg
from repro.sem import logical as L

SCHEMA = Schema([Field("name", str), Field("body", str)])


def _context_records(n=3):
    return [DataRecord({"name": f"r{n_}", "body": "text"}, uid=f"r{n_}") for n_ in range(n)]


# ---------------------------------------------------------------------------
# _records_from_answer mapping
# ---------------------------------------------------------------------------


def _ctx():
    return Context(_context_records(), SCHEMA, desc="d")


def test_records_from_answer_non_list_returns_none():
    assert _records_from_answer({"ratio": 1.0}, _ctx()) is None
    assert _records_from_answer(None, _ctx()) is None
    assert _records_from_answer([], _ctx()) is None


def test_records_from_answer_non_dict_items_returns_none():
    assert _records_from_answer(["r0", "r1"], _ctx()) is None


def test_records_from_answer_maps_by_key_field():
    context = _ctx()
    matched = _records_from_answer([{"key": "r1"}], context)
    assert matched is not None
    assert [record.uid for record in matched] == ["r1"]


def test_records_from_answer_unknown_keys_returns_none():
    assert _records_from_answer([{"key": "zzz"}], _ctx()) is None


def test_records_from_answer_requires_known_key_field():
    assert _records_from_answer([{"mystery": "r0"}], _ctx()) is None


# ---------------------------------------------------------------------------
# Semantic aggregation input budget
# ---------------------------------------------------------------------------


def test_sem_agg_truncates_to_text_budget():
    llm = SimulatedLLM(oracle=SemanticOracle(), seed=0)
    ctx = ExecutionContext(llm=llm)
    big_records = [
        DataRecord({"body": "x" * 10_000}, uid=f"b{i}") for i in range(10)
    ]
    op = L.SemAggOp(child=None, instruction="summarize", output_field="s")
    PhysSemAgg(op, "gpt-4o").execute(big_records, ctx)
    event = llm.tracker.events[-1]
    # The charged prompt stays within the same order as the budget.
    assert event.input_tokens < (AGG_TEXT_BUDGET / 2)


def test_sem_agg_empty_input_still_produces_record():
    llm = SimulatedLLM(oracle=SemanticOracle(), seed=0)
    ctx = ExecutionContext(llm=llm)
    op = L.SemAggOp(child=None, instruction="summarize", output_field="s")
    output = PhysSemAgg(op, "gpt-4o").execute([], ctx)
    assert len(output) == 1


# ---------------------------------------------------------------------------
# Dataset odds and ends
# ---------------------------------------------------------------------------


def test_limit_zero_yields_nothing():
    llm = SimulatedLLM(seed=0)
    result = (
        Dataset.from_records(_context_records(), SCHEMA)
        .limit(0)
        .run(QueryProcessorConfig(llm=llm, seed=0))
    )
    assert result.records == []


def test_field_values_helper():
    llm = SimulatedLLM(seed=0)
    result = (
        Dataset.from_records(_context_records(), SCHEMA)
        .run(QueryProcessorConfig(llm=llm, seed=0))
    )
    assert result.field_values("name") == ["r0", "r1", "r2"]
    assert result.field_values("missing") == [None, None, None]


def test_empty_source_runs_cleanly():
    llm = SimulatedLLM(seed=0)
    result = (
        Dataset.from_records([], SCHEMA)
        .sem_filter("anything at all")
        .run(QueryProcessorConfig(llm=llm, seed=0))
    )
    assert result.records == []
    assert result.total_cost_usd == 0.0


def test_context_derived_empty_records_allowed():
    context = _ctx()
    child = context.derived("empty view", records=[])
    assert len(child) == 0
    assert child.parent is context


# ---------------------------------------------------------------------------
# CLI query command on a second dataset
# ---------------------------------------------------------------------------


def test_cli_query_enron_dataset():
    import io
    from contextlib import redirect_stdout

    from repro.cli import main
    from repro.data.datasets.enron import QUERY_RELEVANT

    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = main(["query", QUERY_RELEVANT, "--dataset", "enron"])
    assert code == 0
    assert "answer" in buffer.getvalue()
