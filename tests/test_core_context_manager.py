"""Tests for the ContextManager (materialized-Context reuse)."""

import pytest

from repro.core.context import Context
from repro.core.context_manager import ContextManager
from repro.data.records import DataRecord
from repro.data.schemas import Field, Schema
from repro.llm.simulated import SimulatedLLM

SCHEMA = Schema([Field("name", str)])


def _context(desc):
    return Context([DataRecord({"name": "r"})], SCHEMA, desc=desc)


def _manager(threshold=0.6):
    return ContextManager(SimulatedLLM(seed=0), threshold=threshold)


def test_register_and_find_similar():
    manager = _manager()
    manager.register(
        _context("identity theft statistics for 2001"),
        "find national identity theft statistics for the year 2001",
    )
    entry, score = manager.find_similar(
        "find national identity theft statistics for the year 2024"
    )
    assert entry is not None
    assert score >= 0.6
    assert entry.hits == 1


def test_dissimilar_instruction_misses():
    manager = _manager()
    manager.register(_context("identity theft statistics"), "identity theft reports")
    entry, score = manager.find_similar("recipes for sourdough bread baking")
    assert entry is None
    assert score < 0.6


def test_empty_manager_returns_none():
    entry, score = _manager().find_similar("anything")
    assert entry is None and score == 0.0


def test_best_of_multiple_entries_wins():
    manager = _manager(threshold=0.2)
    manager.register(_context("fraud losses by payment method"), "fraud losses by payment method")
    target = manager.register(
        _context("identity theft reports by year"), "identity theft reports by year"
    )
    entry, _score = manager.find_similar("yearly identity theft report counts by year")
    assert entry is target


def test_threshold_validation():
    with pytest.raises(ValueError):
        ContextManager(SimulatedLLM(seed=0), threshold=1.5)


def test_custom_threshold_override_per_query():
    manager = _manager(threshold=0.99)
    manager.register(_context("identity theft stats"), "identity theft statistics 2001")
    entry, _ = manager.find_similar("identity theft statistics 2024")
    assert entry is None  # default threshold too strict
    entry, _ = manager.find_similar("identity theft statistics 2024", threshold=0.3)
    assert entry is not None


def test_clear_and_len():
    manager = _manager()
    manager.register(_context("a"), "a")
    assert len(manager) == 1
    manager.clear()
    assert len(manager) == 0


def test_register_is_free_lookup_charges_one_batch():
    llm = SimulatedLLM(seed=0)
    manager = ContextManager(llm)
    for i in range(5):
        manager.register(_context(f"description {i}"), f"instruction {i}")
    # Registration defers embedding entirely.
    assert llm.tracker.total().calls == 0
    manager.find_similar("some other instruction")
    # One batched request covers all five pending entries + one query embed,
    # instead of the six separate calls the eager path used to make.
    first_lookup_calls = llm.tracker.total().calls
    assert first_lookup_calls == 2
    # Embeddings are cached on the entries: a second lookup only pays the
    # query embedding.
    manager.find_similar("yet another instruction")
    assert llm.tracker.total().calls == first_lookup_calls + 1


def test_lazy_entries_embedded_before_scoring():
    manager = _manager()
    manager.register(
        _context("identity theft statistics"), "identity theft statistics 2001"
    )
    entry, score = manager.find_similar("identity theft statistics 2024")
    assert entry is not None and score >= 0.6
    assert entry.embedding is not None
