"""Tests for SQL execution semantics."""

import pytest

from repro.errors import SQLExecutionError, SQLPlanError
from repro.sql import Database


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE people (name TEXT, age INTEGER, city TEXT)")
    database.execute(
        "INSERT INTO people VALUES "
        "('alice', 34, 'boston'), ('bob', 28, 'nyc'), "
        "('carol', 41, 'boston'), ('dan', NULL, 'nyc')"
    )
    return database


def test_where_filters(db):
    rows = db.query("SELECT name FROM people WHERE age > 30")
    assert {row["name"] for row in rows} == {"alice", "carol"}


def test_null_comparison_excluded_from_where(db):
    rows = db.query("SELECT name FROM people WHERE age > 0")
    assert "dan" not in {row["name"] for row in rows}


def test_is_null(db):
    rows = db.query("SELECT name FROM people WHERE age IS NULL")
    assert [row["name"] for row in rows] == ["dan"]


def test_arithmetic_and_alias(db):
    row = db.query("SELECT age * 2 AS doubled FROM people WHERE name = 'bob'")[0]
    assert row["doubled"] == 56


def test_string_concat_with_plus(db):
    row = db.query("SELECT name + '!' AS x FROM people WHERE name = 'bob'")[0]
    assert row["x"] == "bob!"


def test_division_by_zero_raises(db):
    with pytest.raises(SQLExecutionError):
        db.query("SELECT 1 / 0")


def test_group_by_with_aggregates(db):
    rows = db.query(
        "SELECT city, COUNT(*) AS n, AVG(age) AS avg_age FROM people "
        "GROUP BY city ORDER BY city"
    )
    assert rows[0] == {"city": "boston", "n": 2, "avg_age": 37.5}
    # NULL age is excluded from AVG but dan still counts in COUNT(*).
    assert rows[1]["n"] == 2 and rows[1]["avg_age"] == 28


def test_aggregate_without_group_by(db):
    assert db.execute("SELECT COUNT(*) FROM people").scalar() == 4
    assert db.execute("SELECT MAX(age) FROM people").scalar() == 41


def test_count_distinct(db):
    assert db.execute("SELECT COUNT(DISTINCT city) FROM people").scalar() == 2


def test_sum_of_empty_group_is_null(db):
    value = db.execute("SELECT SUM(age) FROM people WHERE age > 100").scalar()
    assert value is None


def test_having_filters_groups(db):
    rows = db.query(
        "SELECT city FROM people GROUP BY city HAVING COUNT(*) > 1 ORDER BY city"
    )
    assert len(rows) == 2  # both cities have 2


def test_order_by_desc_with_nulls_last(db):
    rows = db.query("SELECT name, age FROM people ORDER BY age DESC")
    assert rows[0]["name"] == "carol"
    assert rows[-1]["name"] == "dan"  # NULL sorts last


def test_order_by_asc_nulls_last(db):
    rows = db.query("SELECT name FROM people ORDER BY age")
    assert rows[-1]["name"] == "dan"


def test_limit(db):
    assert len(db.query("SELECT * FROM people LIMIT 2")) == 2


def test_distinct(db):
    rows = db.query("SELECT DISTINCT city FROM people ORDER BY city")
    assert [row["city"] for row in rows] == ["boston", "nyc"]


def test_in_list(db):
    rows = db.query("SELECT name FROM people WHERE city IN ('boston')")
    assert {row["name"] for row in rows} == {"alice", "carol"}


def test_between(db):
    rows = db.query("SELECT name FROM people WHERE age BETWEEN 28 AND 34")
    assert {row["name"] for row in rows} == {"alice", "bob"}


def test_like_patterns(db):
    rows = db.query("SELECT name FROM people WHERE name LIKE '%a%'")
    assert {row["name"] for row in rows} == {"alice", "carol", "dan"}
    rows = db.query("SELECT name FROM people WHERE name LIKE '_ob'")
    assert [row["name"] for row in rows] == ["bob"]


def test_case_when(db):
    rows = db.query(
        "SELECT name, CASE WHEN age >= 40 THEN 'senior' WHEN age >= 30 "
        "THEN 'mid' ELSE 'junior' END AS band FROM people WHERE age IS NOT NULL "
        "ORDER BY name"
    )
    assert [row["band"] for row in rows] == ["mid", "junior", "senior"]


def test_scalar_functions(db):
    row = db.query(
        "SELECT upper(name) u, length(city) l, coalesce(age, -1) c "
        "FROM people WHERE name = 'dan'"
    )[0]
    assert row == {"u": "DAN", "l": 3, "c": -1}


def test_inner_join():
    db = Database()
    db.execute("CREATE TABLE a (id INTEGER, v TEXT)")
    db.execute("CREATE TABLE b (id INTEGER, w TEXT)")
    db.execute("INSERT INTO a VALUES (1, 'x'), (2, 'y')")
    db.execute("INSERT INTO b VALUES (1, 'p'), (1, 'q'), (3, 'r')")
    rows = db.query(
        "SELECT a.v, b.w FROM a JOIN b ON a.id = b.id ORDER BY b.w"
    )
    assert rows == [{"v": "x", "w": "p"}, {"v": "x", "w": "q"}]


def test_left_join_null_fills():
    db = Database()
    db.execute("CREATE TABLE a (id INTEGER)")
    db.execute("CREATE TABLE b (id INTEGER, w TEXT)")
    db.execute("INSERT INTO a VALUES (1), (2)")
    db.execute("INSERT INTO b VALUES (1, 'p')")
    rows = db.query("SELECT a.id, b.w FROM a LEFT JOIN b ON a.id = b.id ORDER BY a.id")
    assert rows == [{"id": 1, "w": "p"}, {"id": 2, "w": None}]


def test_ambiguous_column_rejected():
    db = Database()
    db.execute("CREATE TABLE a (id INTEGER)")
    db.execute("CREATE TABLE b (id INTEGER)")
    db.execute("INSERT INTO a VALUES (1)")
    db.execute("INSERT INTO b VALUES (1)")
    with pytest.raises(SQLExecutionError):
        db.query("SELECT id FROM a JOIN b ON a.id = b.id")


def test_unknown_column_error_names_scope(db):
    with pytest.raises(SQLExecutionError) as excinfo:
        db.query("SELECT nonexistent FROM people")
    assert "nonexistent" in str(excinfo.value)


def test_unknown_table_lists_known(db):
    with pytest.raises(SQLExecutionError) as excinfo:
        db.query("SELECT * FROM missing")
    assert "people" in str(excinfo.value)


def test_aggregate_in_where_rejected(db):
    with pytest.raises(SQLPlanError):
        db.query("SELECT * FROM people WHERE COUNT(*) > 1")


def test_select_without_from():
    assert Database().execute("SELECT 2 + 3 AS v").scalar() == 5


def test_mismatched_comparison_types_raise(db):
    with pytest.raises(SQLExecutionError):
        db.query("SELECT * FROM people WHERE name > 5")


def test_equality_across_types_is_false(db):
    rows = db.query("SELECT * FROM people WHERE name = 5")
    assert rows == []
