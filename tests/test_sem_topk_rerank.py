"""Tests for the LLM-reranked top-k variant."""

from repro.data.records import DataRecord
from repro.data.schemas import Field, Schema
from repro.llm.oracle import DIFFICULTY_PREFIX, IntentRegistry, SemanticOracle
from repro.llm.simulated import SimulatedLLM
from repro.sem import Dataset, QueryProcessorConfig

SCHEMA = Schema([Field("name", str), Field("text", str)])


def _registry():
    registry = IntentRegistry()
    registry.register("tk.relevant", ["relevant", "gadgets"])
    return registry


def _records():
    records = []
    specs = [
        # Lexically misleading: mentions gadget words but annotated irrelevant.
        ("decoy", "gadgets gadgets gadgets sale flyer gadgets", False),
        ("true1", "engineering notes on the gadget prototype", True),
        ("true2", "gadget assembly instructions for the team", True),
        ("noise1", "lunch menu for friday", False),
        ("noise2", "parking garage closure notice", False),
    ]
    for name, text, relevant in specs:
        records.append(
            DataRecord(
                {"name": name, "text": text},
                uid=name,
                annotations={
                    "tk.relevant": relevant,
                    DIFFICULTY_PREFIX + "tk.relevant": 0.05,
                },
            )
        )
    return records


def _run(method):
    llm = SimulatedLLM(oracle=SemanticOracle(_registry()), seed=0)
    result = (
        Dataset.from_records(_records(), SCHEMA)
        .sem_topk("the record is relevant to gadgets", k=2, method=method)
        .run(QueryProcessorConfig(llm=llm, optimize=False, seed=0))
    )
    return [record["name"] for record in result.records], llm


def test_embedding_topk_fooled_by_lexical_decoy():
    names, _llm = _run("embedding")
    assert "decoy" in names  # keyword stuffing wins on pure similarity


def test_llm_rerank_promotes_judged_relevant():
    names, llm = _run("llm")
    assert set(names) == {"true1", "true2"}
    # Reranking paid for per-record judgments.
    judgments = [e for e in llm.tracker.events if e.tag.endswith(":topk") and e.output_tokens]
    assert len(judgments) == 5


def test_topk_k_larger_than_input():
    llm = SimulatedLLM(oracle=SemanticOracle(_registry()), seed=0)
    result = (
        Dataset.from_records(_records(), SCHEMA)
        .sem_topk("the record is relevant to gadgets", k=50)
        .run(QueryProcessorConfig(llm=llm, optimize=False, seed=0))
    )
    assert len(result.records) == 5
