"""Tests for the simulated LLM service.

The toy registry/record/LLM setup lives in ``conftest.py`` as the
``toy_registry``, ``toy_record``, and ``make_toy_llm`` fixtures.
"""

import pytest

from repro.data.records import DataRecord
from repro.llm.oracle import DIFFICULTY_PREFIX, SemanticOracle


def test_judge_filter_easy_record_matches_truth(make_toy_llm, toy_record):
    llm = make_toy_llm()
    assert llm.judge_filter("has the special flag", toy_record(flag=True)).answer is True
    assert llm.judge_filter("has the special flag", toy_record(flag=False, uid="n")).answer is False


def test_judge_filter_charges_cost_and_latency(make_toy_llm, toy_record):
    llm = make_toy_llm()
    judgment = llm.judge_filter("special flag", toy_record())
    assert judgment.event.cost_usd > 0
    assert llm.clock.elapsed > 0
    assert llm.tracker.total().calls == 1


def test_judgment_cached_second_call_free(make_toy_llm, toy_record):
    llm = make_toy_llm()
    record = toy_record()
    first = llm.judge_filter("special flag", record)
    elapsed = llm.clock.elapsed
    second = llm.judge_filter("special flag", record)
    assert second.event.cached
    assert second.event.cost_usd == 0.0
    assert llm.clock.elapsed == elapsed
    assert first.answer == second.answer


def test_cache_can_be_disabled(make_toy_llm, toy_record):
    llm = make_toy_llm(use_cache=False)
    record = toy_record()
    llm.judge_filter("special flag", record)
    second = llm.judge_filter("special flag", record)
    assert not second.event.cached
    assert second.event.cost_usd > 0


def test_same_seed_same_answers_across_instances(make_toy_llm, toy_record):
    answers1 = [
        make_toy_llm(seed=5).judge_filter(
            "special flag", toy_record(difficulty=1.0, uid=f"u{i}")
        ).answer
        for i in range(20)
    ]
    answers2 = [
        make_toy_llm(seed=5).judge_filter(
            "special flag", toy_record(difficulty=1.0, uid=f"u{i}")
        ).answer
        for i in range(20)
    ]
    assert answers1 == answers2


def test_different_seeds_can_differ_on_ambiguous_records(make_toy_llm, toy_record):
    outcomes = set()
    for seed in range(12):
        answer = make_toy_llm(seed=seed).judge_filter(
            "special flag", toy_record(flag=False, difficulty=1.0, uid="amb")
        ).answer
        outcomes.add(answer)
    assert outcomes == {True, False}


def test_cheap_model_errs_more_than_champion(make_toy_llm, toy_record):
    def error_count(model):
        errors = 0
        for i in range(60):
            llm = make_toy_llm(seed=i)
            record = toy_record(flag=True, difficulty=0.6, uid=f"r{i}")
            if llm.judge_filter("special flag", record, model=model).answer is not True:
                errors += 1
        return errors

    assert error_count("gpt-3.5-turbo") > error_count("gpt-4o")


def test_extract_returns_truth_on_easy_record(make_toy_llm, toy_record):
    llm = make_toy_llm()
    result = llm.extract("extract the number of widgets", toy_record(count=42))
    assert result.value == 42
    assert result.resolved


def test_extract_unresolved_returns_none(make_toy_llm, toy_record):
    llm = make_toy_llm()
    result = llm.extract("extract the blorbification factor xyzzy", toy_record())
    assert result.value is None
    assert not result.resolved


def test_extract_corruption_on_hard_records_is_plausible(make_toy_llm, toy_record):
    values = set()
    for seed in range(30):
        llm = make_toy_llm(seed=seed)
        record = toy_record(count=100, difficulty=1.0, uid="hard")
        values.add(llm.extract("extract the number of widgets", record).value)
    assert 100 in values  # usually right
    corrupted = values - {100}
    assert corrupted, "difficulty 1.0 should produce some corrupted extractions"
    assert all(isinstance(value, (int, float)) for value in corrupted)


def test_classify_picks_among_options(make_toy_llm, toy_registry):
    llm = make_toy_llm()
    toy_registry.register("t.style", ["architectural", "style"])
    llm.oracle = SemanticOracle(toy_registry)
    record = DataRecord({"body": "x"}, annotations={"t.style": "modern"})
    result = llm.classify("what architectural style", ["modern", "ranch"], record)
    assert result.value in ("modern", "ranch")


def test_classify_requires_options(make_toy_llm, toy_record):
    llm = make_toy_llm()
    with pytest.raises(ValueError):
        llm.classify("anything", [], toy_record())


def test_complete_uses_expected_output_and_charges(make_toy_llm):
    llm = make_toy_llm()
    result = llm.complete("write a plan", expected_output="the plan text")
    assert result.text == "the plan text"
    assert result.event.output_tokens > 0
    assert result.event.cost_usd > 0


def test_complete_without_expected_output_echoes_keywords(make_toy_llm):
    llm = make_toy_llm()
    result = llm.complete("summarize identity theft statistics")
    assert "identity" in result.text


def test_parallel_section_charges_makespan(make_toy_llm, toy_record):
    llm_sequential = make_toy_llm()
    for i in range(4):
        llm_sequential.judge_filter("special flag", toy_record(uid=f"s{i}"))
    sequential_time = llm_sequential.clock.elapsed

    llm_parallel = make_toy_llm()
    with llm_parallel.parallel(4):
        for i in range(4):
            llm_parallel.judge_filter("special flag", toy_record(uid=f"s{i}"))
    parallel_time = llm_parallel.clock.elapsed

    assert parallel_time < sequential_time
    assert parallel_time > 0


def test_parallel_rejects_bad_width(make_toy_llm):
    llm = make_toy_llm()
    with pytest.raises(ValueError):
        with llm.parallel(0):
            pass


def test_embed_charges_and_caches(make_toy_llm):
    llm = make_toy_llm()
    llm.embed("identity theft")
    cost_first = llm.tracker.total().cost_usd
    assert cost_first > 0
    llm.embed("identity theft")
    assert llm.tracker.total().cost_usd == cost_first  # cached


def test_nested_parallel_inner_makespan_is_one_outer_item(make_toy_llm, toy_record):
    """Regression: a nested section's makespan must ride as a single item in
    the enclosing section's waves, not advance the clock directly (which
    double-scheduled nested sections against their parent)."""
    single = make_toy_llm()
    single.judge_filter("special flag", toy_record(uid="a"))
    one_call = single.clock.elapsed

    llm = make_toy_llm()
    with llm.parallel(2):
        llm.judge_filter("special flag", toy_record(uid="a"))
        with llm.parallel(2):
            llm.judge_filter("special flag", toy_record(uid="b"))
            llm.judge_filter("special flag", toy_record(uid="c"))
    # All three calls are identically priced; the inner pair collapses to one
    # makespan L, and the outer wave of [L, L] at width 2 is just L.
    assert llm.clock.elapsed == pytest.approx(one_call)


def test_cached_calls_do_not_occupy_wave_slots(make_toy_llm, toy_record):
    """Regression: zero-latency cache hits must not displace real calls in
    the positional wave chunking of a parallel section."""
    llm = make_toy_llm()
    record = toy_record(uid="warm")
    llm.judge_filter("special flag", record)  # warm the cache
    one_call = llm.clock.elapsed

    with llm.parallel(2):
        llm.judge_filter("special flag", record)  # cache hit: free, instant
        llm.judge_filter("special flag", toy_record(uid="cold1"))
        llm.judge_filter("special flag", toy_record(uid="cold2"))
    # The two cold calls share one wave of width 2; the buggy accounting put
    # the cached call in the first slot and charged a second wave.
    assert llm.clock.elapsed - one_call == pytest.approx(one_call)


def test_distractor_annotation_steers_corruption(make_toy_llm):
    from repro.llm.simulated import DISTRACTOR_PREFIX

    for seed in range(40):
        llm = make_toy_llm(seed=seed)
        record = DataRecord(
            {"body": "widgets"},
            uid="d",
            annotations={
                "t.count": 100,
                DIFFICULTY_PREFIX + "t.count": 1.0,
                DISTRACTOR_PREFIX + "t.count": 777,
            },
        )
        value = llm.extract("extract the number of widgets", record).value
        assert value in (100, 777)
