"""Tests for logical rewrites (split, merge, recovery)."""

import pytest

from repro.core.rewrites import (
    compute_batch,
    compute_with_recovery,
    merge_similar_instructions,
    should_split,
    split_instruction,
)
from repro.core.runtime import AnalyticsRuntime
from repro.data.datasets import kramabench as kb


def test_split_on_sentences():
    parts = split_instruction("Do the first thing. Then compute the second.")
    assert len(parts) == 2
    assert all(part.endswith(".") for part in parts)


def test_split_on_markers():
    parts = split_instruction("filter the emails; then extract senders")
    assert parts == ["filter the emails.", "extract senders."]


def test_split_single_directive_unchanged():
    assert split_instruction("Just one directive") == ["Just one directive."]


def test_should_split_heuristic():
    assert should_split("Do A. Do B.")
    assert not should_split("Only one thing to do here")


def test_should_split_judge_charges_llm(legal_bundle):
    runtime = AnalyticsRuntime.for_bundle(legal_bundle, seed=0)
    should_split("Do A. Do B.", runtime)
    assert runtime.usage().calls == 1


def test_merge_groups_near_duplicates():
    groups = merge_similar_instructions(
        [
            "compute the identity theft ratio between 2024 and 2001",
            "compute the ratio of identity theft between 2024 and 2001",
            "list romance scams in 2023",
        ]
    )
    assert len(groups) == 2
    assert groups[0].member_indexes == [0, 1]
    assert groups[1].member_indexes == [2]


def test_merge_identical_instructions():
    groups = merge_similar_instructions(["same thing here"] * 4)
    assert len(groups) == 1
    assert groups[0].member_indexes == [0, 1, 2, 3]


def test_merge_threshold_validation():
    with pytest.raises(ValueError):
        merge_similar_instructions(["a"], threshold=0.0)


def test_compute_batch_shares_results(legal_bundle):
    runtime = AnalyticsRuntime.for_bundle(legal_bundle, seed=3)
    context = runtime.make_context(legal_bundle)
    instructions = [kb.QUERY_RATIO, kb.QUERY_RATIO + " Please."]
    results = compute_batch(context, instructions, runtime)
    assert len(results) == 2
    assert results[0] is results[1]  # merged: same result object


def test_compute_with_recovery_not_triggered_when_valid(legal_bundle):
    runtime = AnalyticsRuntime.for_bundle(legal_bundle, seed=3)
    context = runtime.make_context(legal_bundle)
    result, recovered = compute_with_recovery(context, kb.QUERY_RATIO, runtime)
    assert not recovered
    assert result.answer is not None


def test_compute_with_recovery_inserts_search(legal_bundle):
    runtime = AnalyticsRuntime.for_bundle(legal_bundle, seed=3)
    context = runtime.make_context(legal_bundle)
    awkward = (
        "Determine how many times larger the count of identity theft "
        "reports was in 2024 compared to 2001."
    )
    result, recovered = compute_with_recovery(
        context,
        awkward,
        runtime,
        is_valid=lambda answer: isinstance(answer, dict) and "ratio" in answer,
    )
    assert recovered
    assert isinstance(result.answer, dict) and "ratio" in result.answer
    # Recovery accumulates the failed attempt's cost.
    assert result.cost_usd > 0
