"""Integration tests: fault injection through the LLM substrate, the
semantic-operator executor, and the CodeAgent loop.

The resilience contract under test (see DESIGN.md §5): with retries on,
answers are bit-identical to the fault-free run while cost and virtual
time rise; with retries off, execution degrades gracefully (records are
flagged and skipped, agents burn recovery turns) instead of crashing.

Toy-world setup (registry, record, LLM factories) comes from
``conftest.py``: ``toy_record``, ``make_toy_llm``, ``make_faulty_llm``.
"""

import pytest

from repro.agents.codeagent import CodeAgent
from repro.agents.policies.base import ScriptedPolicy
from repro.agents.tools import ToolRegistry
from repro.data.datasets import enron as en
from repro.errors import CircuitOpenError, TransientAPIError, TransientLLMError
from repro.llm.faults import FaultConfig, FaultInjector, RetryPolicy
from repro.llm.simulated import SimulatedLLM
from repro.sem import Dataset, MaxQuality, QueryProcessorConfig

NO_RETRY = RetryPolicy(enabled=False)


# ---------------------------------------------------------------------------
# Substrate: retries, accounting, determinism
# ---------------------------------------------------------------------------


@pytest.mark.smoke
def test_retries_recover_with_identical_answers_at_a_cost(
    make_toy_llm, make_faulty_llm, toy_record
):
    clean = make_toy_llm(seed=3)
    faulty = make_faulty_llm(rate=0.4, seed=3)
    records = [toy_record(difficulty=1.0, uid=f"u{i}") for i in range(20)]

    clean_answers = [clean.judge_filter("special flag", r).answer for r in records]
    faulty_answers = [faulty.judge_filter("special flag", r).answer for r in records]

    # Answer noise and fault schedule are independent seeded streams.
    assert faulty_answers == clean_answers
    assert faulty.faults.injected > 0
    assert faulty.tracker.failed_calls() == faulty.faults.injected
    # Failed attempts and backoff waits are the price of resilience.
    assert faulty.tracker.total().cost_usd > clean.tracker.total().cost_usd
    assert faulty.clock.elapsed > clean.clock.elapsed


def test_success_events_carry_retry_count(make_faulty_llm, toy_record):
    llm = make_faulty_llm(rate=0.5, seed=2)
    for i in range(20):
        llm.judge_filter("special flag", toy_record(uid=f"u{i}"))
    succeeded = [e for e in llm.tracker.events if not e.failed and not e.cached]
    assert sum(e.retries for e in succeeded) == llm.faults.injected
    assert any(e.retries > 0 for e in succeeded)


@pytest.mark.smoke
def test_same_seed_identical_faulty_runs(make_faulty_llm, toy_record):
    def run():
        llm = make_faulty_llm(rate=0.4, seed=11)
        answers = [
            llm.judge_filter("special flag", toy_record(difficulty=1.0, uid=f"u{i}")).answer
            for i in range(25)
        ]
        return (
            answers,
            llm.faults.attempts,
            llm.faults.injected,
            dict(llm.faults.injected_by_kind),
            llm.tracker.total().cost_usd,
            llm.clock.elapsed,
        )

    assert run() == run()


def test_retries_off_raises_first_fault(make_faulty_llm, toy_record):
    llm = make_faulty_llm(rate=1.0, seed=0, retry=NO_RETRY)
    with pytest.raises(TransientLLMError):
        llm.judge_filter("special flag", toy_record())
    # The single failed attempt is charged before the raise.
    assert llm.tracker.failed_calls() == 1
    assert llm.clock.elapsed > 0


def test_exhausted_attempts_raise_and_charge_every_attempt(make_faulty_llm, toy_record):
    llm = make_faulty_llm(rate=1.0, seed=0, retry=RetryPolicy(max_attempts=3))
    with pytest.raises(TransientLLMError):
        llm.judge_filter("special flag", toy_record())
    assert llm.tracker.failed_calls() == 3


def test_backoff_waits_reach_the_virtual_clock(make_faulty_llm, toy_record):
    slow = make_faulty_llm(
        rate=1.0,
        seed=0,
        retry=RetryPolicy(
            max_attempts=2, base_backoff_s=50.0, max_backoff_s=50.0, jitter=0.0
        ),
    )
    fast = make_faulty_llm(
        rate=1.0, seed=0, retry=RetryPolicy(max_attempts=2, base_backoff_s=0.0, jitter=0.0)
    )
    for llm in (slow, fast):
        with pytest.raises(TransientLLMError):
            llm.judge_filter("special flag", toy_record())
    # Both runs share the fault schedule and attempt latencies; the fast
    # policy still waits the rate-limit's retry_after_s floor, so the delta
    # is the extra backoff (50s minus that floor).
    assert slow.clock.elapsed >= fast.clock.elapsed + 40.0


def test_per_call_timeout_synthesizes_timeouts(make_toy_llm, toy_record):
    from repro.errors import TimeoutError as LLMTimeoutError

    llm = make_toy_llm(seed=0, retry=RetryPolicy(max_attempts=2, timeout_s=1e-6, jitter=0.0))
    with pytest.raises(LLMTimeoutError):
        llm.judge_filter("special flag", toy_record())


def test_embeddings_exempt_from_faults_by_default(make_faulty_llm):
    llm = make_faulty_llm(rate=1.0, seed=0, retry=NO_RETRY)
    llm.embed("identity theft")  # must not raise
    assert llm.tracker.failed_calls() == 0


def test_cache_hits_bypass_the_fault_path(make_faulty_llm, toy_record):
    llm = make_faulty_llm(rate=0.5, seed=4)
    record = toy_record(uid="warm")
    llm.judge_filter("special flag", record)
    attempts_before = llm.faults.attempts
    second = llm.judge_filter("special flag", record)
    assert second.event.cached
    assert llm.faults.attempts == attempts_before


def test_retry_saga_occupies_one_parallel_slot(make_faulty_llm, toy_record):
    # A call that retries inside a parallel section charges its whole saga
    # (failed attempts + backoffs + success) as a single wave item.
    patient = RetryPolicy(max_attempts=12)
    llm = make_faulty_llm(rate=0.5, seed=5, retry=patient)
    with llm.parallel(4):
        for i in range(4):
            llm.judge_filter("special flag", toy_record(uid=f"u{i}"))
    assert llm.faults.injected > 0
    sequential = make_faulty_llm(rate=0.5, seed=5, retry=patient)
    for i in range(4):
        sequential.judge_filter("special flag", toy_record(uid=f"u{i}"))
    assert llm.clock.elapsed < sequential.clock.elapsed


# ---------------------------------------------------------------------------
# Circuit breaker through the substrate
# ---------------------------------------------------------------------------


def test_breaker_trips_then_recovers_after_cooldown(make_toy_llm, toy_record):
    policy = RetryPolicy(enabled=False, breaker_threshold=2, breaker_cooldown_s=60.0)
    llm = make_toy_llm(
        seed=0,
        faults=FaultInjector(FaultConfig(rate=1.0), seed=0),
        retry=policy,
    )
    for i in range(2):
        with pytest.raises(TransientLLMError):
            llm.judge_filter("special flag", toy_record(uid=f"u{i}"))
    # Breaker is open: fail fast without consuming a fault-schedule draw.
    attempts = llm.faults.attempts
    with pytest.raises(CircuitOpenError):
        llm.judge_filter("special flag", toy_record(uid="u2"))
    assert llm.faults.attempts == attempts

    # The provider recovers; after the cooldown the half-open probe succeeds.
    llm.faults = None
    llm.clock.advance(60.0)
    judgment = llm.judge_filter("special flag", toy_record(uid="u3"))
    assert judgment.event.cost_usd > 0
    breaker = llm._breakers["gpt-4o"]
    assert breaker.state == "closed"
    assert breaker.times_opened == 1


# ---------------------------------------------------------------------------
# Semantic-operator executor: per-record degradation
# ---------------------------------------------------------------------------


@pytest.fixture
def make_config(make_llm):
    def factory(bundle, seed=0, **kwargs):
        fault = kwargs.pop("fault_config", None)
        retry = kwargs.pop("retry", None)
        llm = make_llm(
            bundle,
            seed=seed,
            faults=FaultInjector(fault, seed=seed) if fault else None,
            retry=retry,
        )
        defaults = dict(llm=llm, policy=MaxQuality(), seed=seed)
        defaults.update(kwargs)
        return QueryProcessorConfig(**defaults)

    return factory


def _filter_run(config, bundle):
    return (
        Dataset.from_source(bundle.source())
        .sem_filter(en.FILTER_RELEVANT)
        .run(config)
    )


def test_operators_identical_output_under_faults_with_retries(make_config, enron_bundle):
    clean = make_config(enron_bundle, seed=7)
    faulty = make_config(
        enron_bundle,
        seed=7,
        fault_config=FaultConfig(rate=0.15),
        retry=RetryPolicy(max_attempts=6),
    )
    result_clean = _filter_run(clean, enron_bundle)
    result_faulty = _filter_run(faulty, enron_bundle)

    names = lambda result: [record["filename"] for record in result.records]  # noqa: E731
    assert names(result_faulty) == names(result_clean)
    assert result_faulty.retried_calls > 0
    assert result_faulty.failed_records == 0
    assert result_faulty.total_cost_usd > result_clean.total_cost_usd
    assert result_faulty.total_time_s > result_clean.total_time_s


def test_skip_mode_flags_records_instead_of_crashing(make_config, enron_bundle):
    config = make_config(
        enron_bundle,
        fault_config=FaultConfig(rate=0.3),
        retry=NO_RETRY,
        optimize=False,
        on_failure="skip",
    )
    result = _filter_run(config, enron_bundle)
    assert result.failed_records > 0
    assert len(config.llm.tracker.events) > 0
    # Flagged records carry the error type for the report.
    stats = result.operator_stats[1]
    assert stats.failed_records == result.failed_records
    assert result.retried_calls == config.llm.tracker.failed_calls()


def test_raise_mode_propagates(make_config, enron_bundle):
    config = make_config(
        enron_bundle,
        fault_config=FaultConfig(rate=1.0),
        retry=NO_RETRY,
        optimize=False,
        on_failure="raise",
    )
    with pytest.raises(TransientLLMError):
        _filter_run(config, enron_bundle)


def test_fallback_mode_reroutes_to_healthy_model(make_config, enron_bundle):
    # The champion model always faults; the cheap tier never does.  Every
    # record is answered by the fallback, so nothing is dropped.
    config = make_config(
        enron_bundle,
        fault_config=FaultConfig(rate=0.0, per_model_rates={"gpt-4o": 1.0}),
        retry=NO_RETRY,
        optimize=False,
        on_failure="fallback",
        fallback_model="gpt-4o-mini",
    )
    result = _filter_run(config, enron_bundle)
    assert result.failed_records == 0
    assert len(result.records) > 0
    assert result.retried_calls > 0
    models = {e.model for e in config.llm.tracker.events if not e.failed and not e.cached}
    assert "gpt-4o-mini" in models


def test_config_rejects_unknown_failure_mode(make_config, enron_bundle):
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        make_config(enron_bundle, on_failure="explode")


# ---------------------------------------------------------------------------
# CodeAgent: recovery turns, timeouts, aborts
# ---------------------------------------------------------------------------


class _ScriptedFaults:
    """Duck-typed injector with an explicit per-attempt schedule."""

    def __init__(self, schedule):
        self.schedule = list(schedule)
        self.attempts = 0
        self.injected = 0

    def draw(self, model, is_embedding=False, width=1, now=0.0):
        self.attempts += 1
        if self.schedule and self.schedule.pop(0):
            self.injected += 1
            return TransientAPIError("scripted fault")
        return None


class _TwoStep(ScriptedPolicy):
    def step_0(self, task, trace, tools):
        return "x = 2 + 2\nprint('computed', x)"

    def step_1(self, task, trace, tools):
        assert "computed 4" in trace.last_observation()
        return "final_answer(x)"


def test_agent_recovery_turn_reissues_same_step():
    # First completion attempt dies; the recovery turn must re-run the SAME
    # step (the scripted policy's internal counter must not advance), so the
    # episode still finishes with the right answer.
    llm = SimulatedLLM(seed=0, faults=_ScriptedFaults([True]), retry=NO_RETRY)
    agent = CodeAgent(llm, ToolRegistry(), _TwoStep())
    result = agent.run("compute four")
    assert result.finished and result.answer == 4
    assert result.llm_failures == 1
    assert result.aborted is None
    assert llm.tracker.failed_calls() == 1


def test_agent_aborts_when_llm_stays_down():
    llm = SimulatedLLM(
        seed=0, faults=FaultInjector(FaultConfig(rate=1.0), seed=0), retry=NO_RETRY
    )
    agent = CodeAgent(llm, ToolRegistry(), _TwoStep(), max_llm_failures=3)
    result = agent.run("compute four")
    assert not result.finished
    assert result.aborted == "llm-unavailable"
    assert result.llm_failures == 4  # three tolerated + the one that broke it
    assert result.steps_used == 0  # no step ever completed


def test_agent_step_timeout_aborts_episode():
    llm = SimulatedLLM(seed=0)
    agent = CodeAgent(llm, ToolRegistry(), _TwoStep(), step_timeout_s=1e-6)
    result = agent.run("compute four")
    assert result.aborted == "step-timeout"
    assert result.steps_used == 1
    assert not result.finished


def test_agent_consecutive_tool_errors_abort():
    class AlwaysErrors(ScriptedPolicy):
        def step_0(self, task, trace, tools):
            return "1 / 0"

        step_1 = step_0
        step_2 = step_0

    agent = CodeAgent(
        SimulatedLLM(seed=0),
        ToolRegistry(),
        AlwaysErrors(),
        max_consecutive_tool_errors=2,
    )
    result = agent.run("fail repeatedly")
    assert result.aborted == "tool-errors"
    assert result.tool_errors == 2
    assert result.steps_used == 2


def test_agent_faulty_run_is_deterministic():
    def run():
        llm = SimulatedLLM(
            seed=9,
            faults=FaultInjector(FaultConfig(rate=0.3), seed=9),
            retry=RetryPolicy(max_attempts=5),
        )
        result = CodeAgent(llm, ToolRegistry(), _TwoStep()).run("compute four")
        return (result.answer, result.cost_usd, result.time_s, result.llm_failures)

    assert run() == run()
