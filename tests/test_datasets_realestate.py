"""Tests for the synthetic real-estate corpus."""

import pytest

from repro.data.datasets import generate_realestate_corpus
from repro.data.datasets import realestate as re_mod


def test_default_size(realestate_bundle):
    assert len(realestate_bundle.records()) == 120


def test_custom_size():
    assert len(generate_realestate_corpus(n_listings=50).records()) == 50


def test_minimum_size_enforced():
    with pytest.raises(ValueError):
        generate_realestate_corpus(n_listings=5)


def test_deterministic():
    a = generate_realestate_corpus(seed=23)
    b = generate_realestate_corpus(seed=23)
    assert a.ground_truth == b.ground_truth


def test_modern_share_reasonable(realestate_bundle):
    modern = realestate_bundle.ground_truth["modern_listing_ids"]
    assert 0.15 * 120 <= len(modern) <= 0.45 * 120


def test_annotations_match_ground_truth(realestate_bundle):
    modern = set(realestate_bundle.ground_truth["modern_listing_ids"])
    for record in realestate_bundle.records():
        assert record.annotations[re_mod.INTENT_MODERN] == (
            record["listing_id"] in modern
        )


def test_intents_resolve(realestate_bundle):
    registry = realestate_bundle.registry
    assert registry.resolve(re_mod.FILTER_MODERN).key == re_mod.INTENT_MODERN
    assert registry.resolve(re_mod.MAP_STYLE).key == re_mod.INTENT_STYLE


def test_structured_fields_typed(realestate_bundle):
    for record in realestate_bundle.records()[:10]:
        assert isinstance(record["price"], int)
        assert isinstance(record["bedrooms"], int)
        assert 1 <= record["bedrooms"] <= 6


def test_style_annotation_in_catalog(realestate_bundle):
    for record in realestate_bundle.records():
        assert record.annotations[re_mod.INTENT_STYLE] in re_mod.STYLES
