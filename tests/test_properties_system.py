"""Cross-cutting property and failure-injection tests.

These pin system-level invariants: determinism of whole pipelines,
consistency between optimized and naive plans, sandbox containment under
fuzzing, and graceful degradation when tools fail mid-episode.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agents.codeagent import CodeAgent
from repro.agents.policies.base import ScriptedPolicy
from repro.agents.sandbox import Sandbox
from repro.agents.tools import Tool, ToolRegistry
from repro.data.datasets import enron as en
from repro.errors import ToolError
from repro.llm.oracle import SemanticOracle
from repro.llm.simulated import SimulatedLLM
from repro.sem import Dataset, MaxQuality, QueryProcessorConfig

pytestmark = pytest.mark.slow


# ---------------------------------------------------------------------------
# Optimizer consistency
# ---------------------------------------------------------------------------


def test_optimized_maxquality_plan_matches_naive_output(enron_bundle):
    """Under MaxQuality, optimization must never change the result set.

    Reordering changes *which* records each filter sees first, but because
    judgments are deterministic per (model, instruction, record), the
    intersection semantics are identical.
    """

    def run(optimize):
        llm = SimulatedLLM(oracle=SemanticOracle(enron_bundle.registry), seed=17)
        config = QueryProcessorConfig(
            llm=llm, policy=MaxQuality(), optimize=optimize, seed=17
        )
        result = (
            Dataset.from_source(enron_bundle.source())
            .sem_filter(en.FILTER_MENTIONS)
            .sem_filter(en.FILTER_FIRSTHAND)
            .run(config)
        )
        return sorted(record["filename"] for record in result.records)

    assert run(True) == run(False)


def test_optimized_plan_never_costs_more_excluding_sampling(enron_bundle):
    def run(optimize):
        llm = SimulatedLLM(oracle=SemanticOracle(enron_bundle.registry), seed=17)
        config = QueryProcessorConfig(
            llm=llm, policy=MaxQuality(), optimize=optimize, seed=17
        )
        result = (
            Dataset.from_source(enron_bundle.source())
            .sem_filter(en.FILTER_MENTIONS)
            .sem_filter(en.FILTER_FIRSTHAND)
            .run(config)
        )
        return result.total_cost_usd

    assert run(True) <= run(False) + 1e-9


# ---------------------------------------------------------------------------
# Sandbox fuzzing: arbitrary expressions never escape containment
# ---------------------------------------------------------------------------


@given(st.text(max_size=120))
@settings(max_examples=60, deadline=None)
def test_sandbox_never_raises_on_arbitrary_text(code):
    result = Sandbox().execute(code)
    # Either it ran (possibly printing) or it failed with a captured error;
    # the sandbox itself never propagates.
    assert result.error is None or isinstance(result.error, str)


@given(
    st.lists(
        st.sampled_from(
            ["x = 1", "y = x + 1 if 'x' in dir() else 0", "print('ok')",
             "z = [i * i for i in range(5)]", "w = sum(range(10))"]
        ),
        min_size=1,
        max_size=5,
    )
)
@settings(max_examples=30, deadline=None)
def test_sandbox_safe_statement_sequences_execute(statements):
    sandbox = Sandbox()
    for statement in statements:
        result = sandbox.execute(statement)
        # dir() is not allow-listed, so that line may fail; nothing escapes.
        assert result.final_answer is None


def test_sandbox_blocks_every_dangerous_builtin():
    for expression in (
        "open('/etc/passwd')",
        "__import__('os')",
        "getattr(int, 'bit_length')",
        "globals()",
        "vars()",
        "compile('1', '', 'eval')",
        "input()",
    ):
        result = Sandbox().execute(expression)
        assert result.error, expression


# ---------------------------------------------------------------------------
# Failure injection: flaky tools
# ---------------------------------------------------------------------------


class _FlakyToolPolicy(ScriptedPolicy):
    """Calls a tool that fails, observes the error, then recovers."""

    def step_0(self, task, trace, tools):
        return "result = flaky()\nprint(result)\n"

    def step_1(self, task, trace, tools):
        assert trace.steps[-1].error is not None
        return "final_answer('recovered after tool failure')"


def test_agent_survives_tool_failure():
    calls = {"n": 0}

    def flaky():
        calls["n"] += 1
        raise RuntimeError("backend unavailable")

    tools = ToolRegistry([Tool("flaky", "always fails", flaky)])
    agent = CodeAgent(SimulatedLLM(seed=0), tools, _FlakyToolPolicy())
    result = agent.run("use the flaky tool")
    assert result.finished
    assert result.answer == "recovered after tool failure"
    assert "ToolError" in result.trace.steps[0].error
    assert calls["n"] == 1


class _IntermittentPolicy(ScriptedPolicy):
    def step_0(self, task, trace, tools):
        return "values = []\n"

    def step_1(self, task, trace, tools):
        return (
            "try:\n"
            "    values.append(sometimes())\n"
            "except Exception as exc:\n"
            "    values.append(repr(exc))\n"
            "final_answer(values)\n"
        )


def test_agent_code_can_catch_tool_errors():
    def sometimes():
        raise ToolError("transient")

    tools = ToolRegistry([Tool("sometimes", "fails once", sometimes)])
    agent = CodeAgent(SimulatedLLM(seed=0), tools, _IntermittentPolicy())
    result = agent.run("handle errors in code")
    assert result.finished
    assert "transient" in result.answer[0]


# ---------------------------------------------------------------------------
# Whole-pipeline determinism
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 7, 99])
def test_pipeline_bit_identical_across_runs(enron_bundle, seed):
    def run():
        llm = SimulatedLLM(oracle=SemanticOracle(enron_bundle.registry), seed=seed)
        config = QueryProcessorConfig(llm=llm, seed=seed)
        result = (
            Dataset.from_source(enron_bundle.source())
            .sem_filter(en.FILTER_RELEVANT)
            .run(config)
        )
        return (
            tuple(record["filename"] for record in result.records),
            result.total_cost_usd,
            result.total_time_s,
        )

    assert run() == run()
