"""Tests for data sources."""

import pytest

from repro.data.records import DataRecord
from repro.data.schemas import TEXT_FILE_SCHEMA, Field, Schema
from repro.data.sources import DirectorySource, MemorySource
from repro.errors import DataSourceError


def _records(n=3):
    return [DataRecord({"i": index}) for index in range(n)]


def test_memory_source_iterates_all():
    source = MemorySource(_records(3), Schema([Field("i", int)]))
    assert len(list(source.iterate())) == 3
    assert source.cardinality() == 3


def test_memory_source_stamps_source_id():
    source = MemorySource(_records(1), Schema([Field("i", int)]), source_id="mysrc")
    assert next(iter(source)).source_id == "mysrc"


def test_memory_source_reiterable():
    source = MemorySource(_records(2), Schema([Field("i", int)]))
    assert len(list(source)) == len(list(source)) == 2


def test_directory_source_reads_files(tmp_path):
    (tmp_path / "b.csv").write_text("x,y\n1,2\n", encoding="utf-8")
    (tmp_path / "a.html").write_text("<html></html>", encoding="utf-8")
    source = DirectorySource(tmp_path)
    records = list(source.iterate())
    assert [record["filename"] for record in records] == ["a.html", "b.csv"]
    assert records[0]["format"] == "html"
    assert records[1]["contents"].startswith("x,y")
    assert source.cardinality() == 2
    assert source.schema is TEXT_FILE_SCHEMA


def test_directory_source_missing_dir():
    with pytest.raises(DataSourceError):
        DirectorySource("/nonexistent/path/xyz")
