"""Tests for DataRecord."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.data.records import DataRecord


def test_field_access():
    record = DataRecord({"a": 1, "b": "x"})
    assert record["a"] == 1
    assert record.get("missing", "default") == "default"
    assert "a" in record and "missing" not in record


def test_missing_field_error_lists_fields():
    record = DataRecord({"alpha": 1})
    with pytest.raises(KeyError) as excinfo:
        record["beta"]
    assert "alpha" in str(excinfo.value)


def test_uids_are_unique_by_default():
    assert DataRecord({}).uid != DataRecord({}).uid


def test_explicit_uid_respected():
    assert DataRecord({}, uid="my-id").uid == "my-id"


def test_derive_adds_fields_and_lineage():
    parent = DataRecord({"a": 1}, annotations={"gold": True})
    child = parent.derive({"b": 2})
    assert child["a"] == 1 and child["b"] == 2
    assert child.parent_uids == (parent.uid,)
    assert child.annotations == {"gold": True}


def test_derive_drop_removes_fields():
    parent = DataRecord({"a": 1, "b": 2})
    child = parent.derive(drop=["b"])
    assert "b" not in child and "a" in child


def test_derive_does_not_mutate_parent():
    parent = DataRecord({"a": 1})
    child = parent.derive({"a": 99})
    assert parent["a"] == 1 and child["a"] == 99


def test_merge_combines_fields_right_wins():
    left = DataRecord({"a": 1, "shared": "left"}, annotations={"la": 1})
    right = DataRecord({"b": 2, "shared": "right"}, annotations={"ra": 2})
    merged = DataRecord.merge(left, right)
    assert merged["shared"] == "right"
    assert merged["a"] == 1 and merged["b"] == 2
    assert merged.annotations == {"la": 1, "ra": 2}
    assert merged.parent_uids == (left.uid, right.uid)


def test_as_text_is_sorted_and_complete():
    record = DataRecord({"b": 2, "a": 1})
    text = record.as_text()
    assert text.index("a: 1") < text.index("b: 2")


def test_root_uids_without_resolver():
    source = DataRecord({}, uid="src")
    assert source.root_uids() == ("src",)
    child = source.derive({})
    assert child.root_uids() == ("src",)


def test_root_uids_transitive_with_resolver():
    source = DataRecord({}, uid="src")
    mid = source.derive({})
    leaf = mid.derive({})
    resolver = {record.uid: record for record in (source, mid, leaf)}
    assert leaf.root_uids(resolver) == ("src",)


def test_root_uids_merge_dedup():
    a = DataRecord({}, uid="a")
    merged = DataRecord.merge(a.derive({}), a.derive({}))
    resolver = {a.uid: a}
    for parent_uid in merged.parent_uids:
        resolver[parent_uid] = a.derive({})
    # Both sides resolve to "a"-derived parents; no duplicates emitted.
    roots = merged.root_uids()
    assert len(roots) == len(set(roots))


@given(st.dictionaries(st.from_regex(r"[a-z]{1,8}", fullmatch=True), st.integers(), max_size=6))
def test_field_names_sorted_property(fields):
    record = DataRecord(fields)
    assert record.field_names() == sorted(fields)
