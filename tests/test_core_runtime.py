"""Tests for the AnalyticsRuntime facade."""

import pytest

from repro.core.runtime import AnalyticsRuntime
from repro.data.datasets import kramabench as kb
from repro.data.records import DataRecord
from repro.data.schemas import Field, Schema


def test_for_bundle_wires_oracle(legal_bundle):
    runtime = AnalyticsRuntime.for_bundle(legal_bundle, seed=0)
    record = legal_bundle.records()[0]
    judgment = runtime.llm.judge_filter(kb.FILTER_MENTIONS, record)
    assert judgment.intent_key == kb.INTENT_MENTIONS_IT


def test_make_context_from_bundle(legal_bundle):
    runtime = AnalyticsRuntime.for_bundle(legal_bundle, seed=0)
    context = runtime.make_context(legal_bundle)
    assert len(context) == 132
    assert context.desc == legal_bundle.description


def test_make_context_from_records_requires_schema_desc():
    runtime = AnalyticsRuntime(seed=0)
    records = [DataRecord({"a": 1})]
    with pytest.raises(ValueError):
        runtime.make_context(records)
    context = runtime.make_context(
        records, schema=Schema([Field("a", int)]), desc="tiny"
    )
    assert len(context) == 1


def test_make_context_with_index(legal_bundle):
    runtime = AnalyticsRuntime.for_bundle(legal_bundle, seed=0)
    context = runtime.make_context(legal_bundle, build_index=True)
    assert context.has_vector_index


def test_program_config_carries_settings(legal_bundle):
    runtime = AnalyticsRuntime.for_bundle(legal_bundle, seed=5, sample_size=7)
    config = runtime.program_config(tag="custom")
    assert config.sample_size == 7
    assert config.seed == 5
    assert config.tag == "custom"
    assert config.llm is runtime.llm


def test_materialize_rows_and_sql():
    runtime = AnalyticsRuntime(seed=0)
    runtime.materialize_rows("t", [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}])
    assert runtime.sql("SELECT SUM(a) FROM t").scalar() == 3


def test_materialize_records_projected():
    runtime = AnalyticsRuntime(seed=0)
    records = [DataRecord({"a": 1, "b": "x", "c": 9.5})]
    runtime.materialize_records("t", records, fields=["a", "b"])
    rows = runtime.sql("SELECT * FROM t").to_dicts()
    assert rows == [{"a": 1, "b": "x"}]


def test_materialize_replace_semantics():
    runtime = AnalyticsRuntime(seed=0)
    runtime.materialize_rows("t", [{"a": 1}])
    runtime.materialize_rows("t", [{"a": 2}])  # replace=True by default
    assert runtime.sql("SELECT a FROM t").scalar() == 2


def test_usage_and_elapsed_track_llm(legal_bundle):
    runtime = AnalyticsRuntime.for_bundle(legal_bundle, seed=0)
    assert runtime.usage().calls == 0
    runtime.llm.complete("hello")
    assert runtime.usage().calls == 1
    assert runtime.elapsed_s > 0


def test_cheapest_model_is_in_catalog():
    from repro.llm.models import MODEL_CATALOG

    assert AnalyticsRuntime(seed=0).cheapest_model() in MODEL_CATALOG


def test_compute_and_search_methods_delegate(legal_bundle):
    runtime = AnalyticsRuntime.for_bundle(legal_bundle, seed=8)
    context = runtime.make_context(legal_bundle)
    found = runtime.search(context, "identity theft information")
    assert found.output_context is not context
    result = runtime.compute(context, kb.QUERY_RATIO)
    assert result.answer is not None
