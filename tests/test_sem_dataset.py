"""Tests for the fluent Dataset API."""

import pytest

from repro.data.records import DataRecord
from repro.data.schemas import Field, Schema
from repro.errors import PlanError
from repro.sem import logical as L
from repro.sem.dataset import Dataset

SCHEMA = Schema([Field("i", int), Field("text", str)])


def _dataset(n=4):
    records = [DataRecord({"i": index, "text": f"record {index}"}) for index in range(n)]
    return Dataset.from_records(records, SCHEMA)


def test_methods_return_new_datasets():
    base = _dataset()
    filtered = base.sem_filter("x")
    assert filtered is not base
    assert isinstance(base.plan().root, L.ScanOp)


def test_sem_filter_requires_instruction():
    with pytest.raises(PlanError):
        _dataset().sem_filter("")
    with pytest.raises(PlanError):
        _dataset().sem_filter("   ")


def test_sem_map_single_field_form():
    ds = _dataset().sem_map(Field("out", str, "d"), "extract the thing")
    op = ds.plan().root
    assert isinstance(op, L.SemMapOp)
    assert op.outputs[0][0].name == "out"


def test_sem_map_single_field_requires_instruction():
    with pytest.raises(PlanError):
        _dataset().sem_map(Field("out", str))


def test_sem_map_multi_field_form():
    ds = _dataset().sem_map(
        [(Field("a", str), "get a"), (Field("b", str), "get b")]
    )
    assert len(ds.plan().root.outputs) == 2


def test_sem_map_empty_list_rejected():
    with pytest.raises(PlanError):
        _dataset().sem_map([])


def test_sem_classify_requires_options():
    with pytest.raises(PlanError):
        _dataset().sem_classify("label", [], "classify it")


def test_sem_topk_validates_method():
    with pytest.raises(PlanError):
        _dataset().sem_topk("query", 3, method="psychic")


def test_chained_plan_order():
    ds = (
        _dataset()
        .filter(lambda record: record["i"] > 0)
        .sem_filter("keep it")
        .project(["i"])
        .limit(1)
    )
    labels = [op.label() for op in ds.plan().operators()]
    assert labels[0].startswith("Scan")
    assert labels[-1] == "Limit(1)"


def test_explain_is_stringy():
    text = _dataset().sem_filter("keep").explain()
    assert "SemFilter" in text and "Scan" in text


def test_sem_join_builds_tree():
    joined = _dataset().sem_join(_dataset(), "same entity")
    root = joined.plan().root
    assert isinstance(root, L.SemJoinOp)
    assert root.right is not None
