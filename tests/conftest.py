"""Shared fixtures: dataset bundles are expensive enough to build once,
and the toy single-record world is duplicated across substrate tests."""

from __future__ import annotations

import pytest

from repro.data.datasets import (
    generate_enron_corpus,
    generate_legal_corpus,
    generate_realestate_corpus,
)
from repro.data.records import DataRecord
from repro.llm.faults import FaultConfig, FaultInjector, RetryPolicy
from repro.llm.oracle import DIFFICULTY_PREFIX, IntentRegistry, SemanticOracle
from repro.llm.simulated import SimulatedLLM


@pytest.fixture(scope="session")
def legal_bundle():
    return generate_legal_corpus(seed=7)


@pytest.fixture(scope="session")
def enron_bundle():
    return generate_enron_corpus(seed=11)


@pytest.fixture(scope="session")
def realestate_bundle():
    return generate_realestate_corpus(seed=23)


@pytest.fixture
def make_llm():
    """Factory for fresh simulated LLMs bound to a bundle's oracle."""

    def factory(bundle=None, seed: int = 0, **kwargs) -> SimulatedLLM:
        oracle = SemanticOracle(bundle.registry) if bundle is not None else None
        return SimulatedLLM(oracle=oracle, seed=seed, **kwargs)

    return factory


# ---------------------------------------------------------------------------
# Toy world: one hand-annotated record shape for substrate-level tests
# ---------------------------------------------------------------------------


def build_toy_registry() -> IntentRegistry:
    """A two-intent registry: a boolean flag and a numeric count."""
    registry = IntentRegistry()
    registry.register("t.flag", ["special", "flag"])
    registry.register("t.count", ["number", "widgets"])
    return registry


@pytest.fixture
def toy_registry() -> IntentRegistry:
    return build_toy_registry()


@pytest.fixture
def toy_record():
    """Factory for a single annotated record over the toy registry.

    ``difficulty`` feeds the oracle's noise model: 0.1 is effectively
    deterministic, 1.0 makes the simulated answer genuinely ambiguous.
    """

    def factory(flag=True, count=42, difficulty=0.1, uid=None) -> DataRecord:
        return DataRecord(
            {"body": "a record about widgets"},
            uid=uid,
            annotations={
                "t.flag": flag,
                DIFFICULTY_PREFIX + "t.flag": difficulty,
                "t.count": count,
                DIFFICULTY_PREFIX + "t.count": difficulty,
            },
        )

    return factory


@pytest.fixture
def make_toy_llm():
    """Factory for simulated LLMs bound to the toy registry's oracle."""

    def factory(seed: int = 0, **kwargs) -> SimulatedLLM:
        return SimulatedLLM(
            oracle=SemanticOracle(build_toy_registry()), seed=seed, **kwargs
        )

    return factory


@pytest.fixture
def make_faulty_llm(make_toy_llm):
    """Toy LLM with a seeded fault injector and a patient retry policy."""

    def factory(rate=0.3, seed=0, retry=None, **fault_kwargs) -> SimulatedLLM:
        return make_toy_llm(
            seed=seed,
            faults=FaultInjector(FaultConfig(rate=rate, **fault_kwargs), seed=seed),
            retry=retry or RetryPolicy(max_attempts=6),
        )

    return factory
