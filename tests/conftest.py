"""Shared fixtures: dataset bundles are expensive enough to build once."""

from __future__ import annotations

import pytest

from repro.data.datasets import (
    generate_enron_corpus,
    generate_legal_corpus,
    generate_realestate_corpus,
)
from repro.llm.oracle import SemanticOracle
from repro.llm.simulated import SimulatedLLM


@pytest.fixture(scope="session")
def legal_bundle():
    return generate_legal_corpus(seed=7)


@pytest.fixture(scope="session")
def enron_bundle():
    return generate_enron_corpus(seed=11)


@pytest.fixture(scope="session")
def realestate_bundle():
    return generate_realestate_corpus(seed=23)


@pytest.fixture
def make_llm():
    """Factory for fresh simulated LLMs bound to a bundle's oracle."""

    def factory(bundle=None, seed: int = 0, **kwargs) -> SimulatedLLM:
        oracle = SemanticOracle(bundle.registry) if bundle is not None else None
        return SimulatedLLM(oracle=oracle, seed=seed, **kwargs)

    return factory
