"""Tests for the optimized-program tool and context tools."""

import pytest

from repro.core.program_tool import (
    build_context_tools,
    build_program_tool,
    default_key_field,
)
from repro.core.runtime import AnalyticsRuntime
from repro.data.datasets import enron as en
from repro.errors import ToolError


@pytest.fixture
def runtime_and_context(enron_bundle):
    runtime = AnalyticsRuntime.for_bundle(enron_bundle, seed=0)
    return runtime, runtime.make_context(enron_bundle)


def test_default_key_field_prefers_filename(enron_bundle, realestate_bundle):
    runtime = AnalyticsRuntime.for_bundle(enron_bundle, seed=0)
    assert default_key_field(runtime.make_context(enron_bundle)) == "filename"
    runtime2 = AnalyticsRuntime.for_bundle(realestate_bundle, seed=0)
    assert default_key_field(runtime2.make_context(realestate_bundle)) == "listing_id"


def test_program_tool_runs_filter_and_extracts(runtime_and_context):
    runtime, context = runtime_and_context
    tool = build_program_tool(context, runtime)
    rows = tool(en.QUERY_RELEVANT)
    assert 30 <= len(rows) <= 45
    assert set(rows[0]) == {"filename", "sender", "subject", "summary"}
    assert runtime.usage().cost_usd > 0


def test_program_tool_registers_materialized_context(runtime_and_context):
    runtime, context = runtime_and_context
    tool = build_program_tool(context, runtime)
    tool(en.QUERY_RELEVANT)
    assert len(runtime.context_manager) == 1
    entry = runtime.context_manager.entries()[0]
    assert entry.context.parent is context
    assert "Materialized by semantic program" in entry.context.desc


def test_program_tool_rejects_unsynthesizable(runtime_and_context):
    runtime, context = runtime_and_context
    tool = build_program_tool(context, runtime)
    with pytest.raises(ToolError):
        tool("")


def test_program_tool_exposes_last_result(runtime_and_context):
    runtime, context = runtime_and_context
    build_program_tool(context, runtime)(en.QUERY_RELEVANT)
    assert runtime.last_program_result is not None
    assert runtime.last_program_result.operator_stats


def test_context_tools_list_get_search(runtime_and_context):
    runtime, context = runtime_and_context
    tools = build_context_tools(context, runtime)
    names = tools.names()
    assert {"list_items", "get_item", "vector_search", "run_semantic_program"} <= set(names)

    keys = tools.get("list_items")()
    assert len(keys) == 250
    text = tools.get("get_item")(keys[0])
    assert "sender" in text or "body" in text

    hits = tools.get("vector_search")("business transactions raptor", 3)
    assert len(hits) == 3 and "key" in hits[0] and "score" in hits[0]


def test_get_item_unknown_key(runtime_and_context):
    runtime, context = runtime_and_context
    tools = build_context_tools(context, runtime)
    with pytest.raises(ToolError):
        tools.get("get_item")("missing.txt")


def test_custom_context_tools_included(enron_bundle):
    from repro.agents.tools import Tool

    runtime = AnalyticsRuntime.for_bundle(enron_bundle, seed=0)
    context = runtime.make_context(enron_bundle)
    context.add_tool(Tool("custom_probe", "a custom tool", lambda: "ok"))
    tools = build_context_tools(context, runtime)
    assert "custom_probe" in tools.names()


def test_reuse_narrows_input(legal_bundle):
    first = (
        "Find the files which report national identity theft statistics "
        "for the year 2001 and extract the number of identity theft "
        "reports in the year 2001."
    )
    second = (
        "Find the files which report national identity theft statistics "
        "for the year 2024 and extract the number of identity theft "
        "reports in the year 2024."
    )
    runtime = AnalyticsRuntime.for_bundle(legal_bundle, seed=9, reuse_contexts=True)
    context = runtime.make_context(legal_bundle)
    tool = build_program_tool(context, runtime)
    tool(first)
    cost_mark = runtime.usage().cost_usd
    tool(second)
    marginal = runtime.usage().cost_usd - cost_mark

    runtime_off = AnalyticsRuntime.for_bundle(legal_bundle, seed=9, reuse_contexts=False)
    tool_off = build_program_tool(runtime_off.make_context(legal_bundle), runtime_off)
    tool_off(first)
    cost_mark_off = runtime_off.usage().cost_usd
    tool_off(second)
    marginal_off = runtime_off.usage().cost_usd - cost_mark_off

    assert marginal < 0.5 * marginal_off
