"""Tests for stable hashing."""

from hypothesis import given
from hypothesis import strategies as st

from repro.utils.hashing import stable_digest, stable_hash, stable_uniform


def test_stable_hash_is_deterministic():
    assert stable_hash("a", 1, True) == stable_hash("a", 1, True)


def test_stable_hash_differs_on_part_boundaries():
    assert stable_hash("ab", "c") != stable_hash("a", "bc")


def test_stable_hash_differs_on_types():
    assert stable_hash(1) != stable_hash("1")


def test_stable_uniform_range():
    values = [stable_uniform("key", i) for i in range(200)]
    assert all(0.0 <= value < 1.0 for value in values)


def test_stable_uniform_spread():
    values = [stable_uniform("spread", i) for i in range(500)]
    low = sum(1 for value in values if value < 0.5)
    assert 180 < low < 320  # roughly balanced


def test_stable_digest_is_hex_and_short():
    digest = stable_digest("x", 42)
    assert len(digest) == 16
    int(digest, 16)  # parses as hex


@given(st.lists(st.text(), min_size=1, max_size=5))
def test_stable_hash_deterministic_property(parts):
    assert stable_hash(*parts) == stable_hash(*parts)


@given(st.text(), st.text())
def test_stable_uniform_bounds_property(a, b):
    assert 0.0 <= stable_uniform(a, b) < 1.0
