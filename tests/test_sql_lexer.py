"""Tests for the SQL lexer."""

import pytest

from repro.errors import SQLSyntaxError
from repro.sql.lexer import tokenize_sql


def _kinds(sql):
    return [(token.kind, token.value) for token in tokenize_sql(sql) if token.kind != "eof"]


def test_keywords_case_insensitive():
    assert _kinds("SELECT select SeLeCt") == [("keyword", "select")] * 3


def test_identifiers_preserve_case():
    assert _kinds("myTable")[0] == ("ident", "myTable")


def test_numbers_integer_and_float():
    assert _kinds("42 3.14 .5") == [
        ("number", "42"), ("number", "3.14"), ("number", ".5"),
    ]


def test_string_literal_with_escaped_quote():
    tokens = _kinds("'it''s'")
    assert tokens == [("string", "it's")]


def test_unterminated_string_raises():
    with pytest.raises(SQLSyntaxError):
        tokenize_sql("SELECT 'oops")


def test_quoted_identifier():
    assert _kinds('"weird name"') == [("ident", "weird name")]


def test_multi_char_operators_greedy():
    assert _kinds("a <= b <> c >= d != e") == [
        ("ident", "a"), ("op", "<="), ("ident", "b"), ("op", "<>"),
        ("ident", "c"), ("op", ">="), ("ident", "d"), ("op", "!="),
        ("ident", "e"),
    ]


def test_line_comments_skipped():
    assert _kinds("SELECT 1 -- comment here\n+ 2") == [
        ("keyword", "select"), ("number", "1"), ("op", "+"), ("number", "2"),
    ]


def test_unexpected_character_raises_with_position():
    with pytest.raises(SQLSyntaxError) as excinfo:
        tokenize_sql("SELECT @")
    assert "position 7" in str(excinfo.value)


def test_eof_token_always_last():
    tokens = tokenize_sql("SELECT 1")
    assert tokens[-1].kind == "eof"
