"""Tests for the runtime's whole-query answer cache."""

import pytest

from repro.core.runtime import AnalyticsRuntime
from repro.data.datasets import kramabench as kb


@pytest.fixture
def runtime_ctx(legal_bundle):
    runtime = AnalyticsRuntime.for_bundle(legal_bundle, seed=55)
    return runtime, runtime.make_context(legal_bundle)


def test_identical_query_served_from_cache(runtime_ctx, legal_bundle):
    runtime, context = runtime_ctx
    first = runtime.answer(context, kb.QUERY_RATIO)
    assert not first.reused
    cost_after_first = runtime.usage().cost_usd

    second = runtime.answer(context, kb.QUERY_RATIO)
    assert second.reused
    assert second.answer == first.answer
    assert second.cost_usd == 0.0
    # Only the cache-probe embedding was charged.
    assert runtime.usage().cost_usd - cost_after_first < 1e-4


def test_paraphrase_served_from_cache(runtime_ctx):
    runtime, context = runtime_ctx
    runtime.answer(context, kb.QUERY_RATIO)
    paraphrase = kb.QUERY_RATIO.replace("Compute", "Calculate")
    result = runtime.answer(context, paraphrase)
    assert result.reused


def test_unrelated_query_misses_cache(runtime_ctx):
    runtime, context = runtime_ctx
    runtime.answer(context, kb.QUERY_RATIO)
    result = runtime.answer(context, kb.QUERY_TOP_STATE)
    assert not result.reused
    assert result.answer["state"]


def test_different_base_context_misses_cache(legal_bundle, enron_bundle):
    runtime = AnalyticsRuntime.for_bundle(legal_bundle, seed=55)
    legal_context = runtime.make_context(legal_bundle)
    runtime.answer(legal_context, kb.QUERY_RATIO)

    other_context = runtime.make_context(
        legal_bundle.records()[:10],
        schema=legal_bundle.schema,
        desc="a different lake",
        name="other-lake",
    )
    result = runtime.answer(other_context, kb.QUERY_RATIO)
    assert not result.reused


def test_clear_answers_evicts(runtime_ctx):
    runtime, context = runtime_ctx
    runtime.answer(context, kb.QUERY_RATIO)
    runtime.clear_answers()
    result = runtime.answer(context, kb.QUERY_RATIO)
    assert not result.reused
