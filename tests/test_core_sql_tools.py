"""Tests for the agent-facing SQL tools."""

import pytest

from repro.core.program_tool import build_context_tools
from repro.core.runtime import AnalyticsRuntime
from repro.core.sql_tools import add_sql_tools, rows_from_file
from repro.errors import ToolError


def test_rows_from_csv_typed():
    rows = rows_from_file("Year,Reports,Losses\n2001,86250,$1.5M\n2002,100,$2M\n", "csv")
    assert rows[0] == {"year": 2001, "reports": 86250, "losses": "$1.5M"}


def test_rows_from_csv_commas_in_numbers():
    rows = rows_from_file("Category,Reports\nFraud,\"1,135,291\"\n", "csv")
    assert rows[0]["reports"] == 1135291


def test_rows_from_html_first_table():
    html = (
        "<html><body><table>"
        "<tr><th>Report Category</th><th>2024 Reports</th></tr>"
        "<tr><td>Identity Theft</td><td>1,135,291</td></tr>"
        "</table></body></html>"
    )
    rows = rows_from_file(html, "html")
    assert rows[0]["report_category"] == "Identity Theft"
    assert rows[0]["c_2024_reports"] == 1135291


def test_rows_from_empty_csv_rejected():
    with pytest.raises(ToolError):
        rows_from_file("OnlyHeader\n", "csv")


def test_rows_from_html_without_table_rejected():
    with pytest.raises(ToolError):
        rows_from_file("<html><p>prose</p></html>", "html")


def test_duplicate_headers_get_suffixes():
    rows = rows_from_file("a,a\n1,2\n", "csv")
    assert set(rows[0]) == {"a", "a_1"}


def test_materialize_and_query_ground_truth(legal_bundle):
    runtime = AnalyticsRuntime.for_bundle(legal_bundle, seed=0)
    context = add_sql_tools(runtime.make_context(legal_bundle), runtime)
    message = context.tools.get("materialize_table")(
        legal_bundle.ground_truth["ground_truth_file"], "national_reports"
    )
    assert "24 rows" in message
    rows = context.tools.get("sql")(
        "SELECT identity_theft_reports FROM national_reports WHERE year = 2024"
    )
    assert rows[0]["identity_theft_reports"] == legal_bundle.ground_truth[
        "identity_theft_2024"
    ]


def test_sql_over_materialized_ratio(legal_bundle):
    runtime = AnalyticsRuntime.for_bundle(legal_bundle, seed=0)
    context = add_sql_tools(runtime.make_context(legal_bundle), runtime)
    context.tools.get("materialize_table")(
        legal_bundle.ground_truth["ground_truth_file"], "reports"
    )
    rows = context.tools.get("sql")(
        "SELECT MAX(identity_theft_reports) * 1.0 / MIN(identity_theft_reports) "
        "AS ratio FROM reports WHERE year IN (2001, 2024)"
    )
    assert rows[0]["ratio"] == pytest.approx(legal_bundle.ground_truth["ratio"])


def test_materialize_unknown_file(legal_bundle):
    runtime = AnalyticsRuntime.for_bundle(legal_bundle, seed=0)
    context = add_sql_tools(runtime.make_context(legal_bundle), runtime)
    with pytest.raises(ToolError):
        context.tools.get("materialize_table")("missing.csv", "t")


def test_sql_tools_visible_to_agents(legal_bundle):
    runtime = AnalyticsRuntime.for_bundle(legal_bundle, seed=0)
    context = add_sql_tools(runtime.make_context(legal_bundle), runtime)
    tools = build_context_tools(context, runtime)
    assert "materialize_table" in tools.names()
    assert "sql" in tools.names()


def test_sql_costs_no_llm_tokens(legal_bundle):
    runtime = AnalyticsRuntime.for_bundle(legal_bundle, seed=0)
    context = add_sql_tools(runtime.make_context(legal_bundle), runtime)
    context.tools.get("materialize_table")(
        legal_bundle.ground_truth["ground_truth_file"], "reports"
    )
    cost_before = runtime.usage().cost_usd
    context.tools.get("sql")("SELECT COUNT(*) AS n FROM reports")
    assert runtime.usage().cost_usd == cost_before
