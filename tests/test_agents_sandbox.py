"""Tests for the sandboxed interpreter."""

import pytest

from repro.agents.sandbox import Sandbox, validate_code
from repro.errors import SandboxSecurityError


def test_basic_execution_and_stdout():
    result = Sandbox().execute("print('hello', 1 + 2)")
    assert result.stdout == "hello 3\n"
    assert result.error is None
    assert not result.finished


def test_namespace_persists_across_steps():
    sandbox = Sandbox()
    sandbox.execute("x = 41")
    result = sandbox.execute("print(x + 1)")
    assert result.stdout.strip() == "42"


def test_final_answer_finishes_episode():
    result = Sandbox().execute("final_answer({'ratio': 2.5})")
    assert result.finished
    assert result.final_answer == {"ratio": 2.5}


def test_tools_are_callable():
    sandbox = Sandbox(tools={"double": lambda v: v * 2})
    result = sandbox.execute("print(double(21))")
    assert result.stdout.strip() == "42"


def test_allowed_imports_work():
    result = Sandbox().execute("import json\nprint(json.dumps([1, 2]))")
    assert result.stdout.strip() == "[1, 2]"
    result = Sandbox().execute("import re\nprint(re.findall(r'\\d+', 'a1b22'))")
    assert "22" in result.stdout


def test_forbidden_import_rejected():
    result = Sandbox().execute("import os")
    assert result.error and "not allowed" in result.error


def test_forbidden_import_from_rejected():
    result = Sandbox().execute("from subprocess import run")
    assert result.error and "not allowed" in result.error


def test_open_is_unavailable():
    result = Sandbox().execute("open('/etc/passwd')")
    assert result.error and "open" in result.error


def test_eval_exec_unavailable():
    assert Sandbox().execute("eval('1+1')").error
    assert Sandbox().execute("exec('x=1')").error


def test_dunder_attribute_access_rejected():
    result = Sandbox().execute("(1).__class__")
    assert result.error and "not allowed" in result.error


def test_underscored_attribute_rejected():
    result = Sandbox().execute("x = []\nx._private")
    assert result.error


def test_class_definition_rejected():
    result = Sandbox().execute("class Evil: pass")
    assert result.error and "ClassDef" in result.error


def test_syntax_error_reported_not_raised():
    result = Sandbox().execute("def broken(:")
    assert result.error and "syntax" in result.error.lower()


def test_runtime_error_captured_with_type():
    result = Sandbox().execute("1 / 0")
    assert "ZeroDivisionError" in result.error


def test_infinite_loop_hits_step_budget():
    result = Sandbox(max_lines=10_000).execute("while True:\n    pass")
    assert result.error and "step budget" in result.error


def test_stdout_preserved_before_error():
    result = Sandbox().execute("print('before')\n1/0")
    assert result.stdout.strip() == "before"
    assert result.error


def test_functions_and_comprehensions_allowed():
    code = (
        "def square(v):\n"
        "    return v * v\n"
        "print(sum(square(i) for i in range(4)))\n"
    )
    assert Sandbox().execute(code).stdout.strip() == "14"


def test_validate_code_returns_tree():
    tree = validate_code("x = 1")
    assert tree is not None
    with pytest.raises(SandboxSecurityError):
        validate_code("import socket")


def test_modules_preloaded_without_import():
    result = Sandbox().execute("print(math.sqrt(16))")
    assert result.stdout.strip() == "4.0"
