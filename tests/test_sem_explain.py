"""Tests for EXPLAIN ANALYZE rendering."""

import re

from repro.data.datasets import enron as en
from repro.llm.oracle import SemanticOracle
from repro.llm.simulated import SimulatedLLM
from repro.sem import Dataset, QueryProcessorConfig
from repro.sem.explain import explain_analyze


def _run(enron_bundle):
    llm = SimulatedLLM(oracle=SemanticOracle(enron_bundle.registry), seed=2)
    config = QueryProcessorConfig(llm=llm, seed=2)
    return (
        Dataset.from_source(enron_bundle.source())
        .sem_filter(en.FILTER_MENTIONS)
        .sem_filter(en.FILTER_FIRSTHAND)
        .run_with_report(config)
    )


def test_explain_analyze_renders_all_operators(enron_bundle):
    result, report = _run(enron_bundle)
    text = explain_analyze(result, report)
    assert text.count("SemFilter") >= 2
    assert "Scan" in text
    assert "EXPLAIN ANALYZE" in text


def test_explain_analyze_has_estimates_and_actuals(enron_bundle):
    result, report = _run(enron_bundle)
    text = explain_analyze(result, report)
    assert "Est. out" in text and "Actual $" in text
    assert "plan estimate" in text
    assert "optimizer sampling" in text


def test_cost_estimates_are_reliable(enron_bundle):
    """Per-record cost estimates are tight (selectivity, sampled from a
    dozen records, is legitimately noisy — surfacing that is the point of
    EXPLAIN ANALYZE)."""
    result, report = _run(enron_bundle)
    text = explain_analyze(result, report)
    pattern = re.compile(
        r"\| SemFilter.*\|\s*\d+\s*\|\s*\S+\s*\|\s*\d+\s*\|\s*([\d.]+)\s*\|\s*([\d.]+)\s*\|"
    )
    checked = 0
    for line in text.splitlines():
        match = pattern.search(line)
        if match:
            est_cost, actual_cost = float(match.group(1)), float(match.group(2))
            if actual_cost > 0:
                assert 0.5 * actual_cost <= est_cost <= 2.0 * actual_cost
                checked += 1
    assert checked >= 2


def test_truncated_run_flagged(enron_bundle):
    llm = SimulatedLLM(oracle=SemanticOracle(enron_bundle.registry), seed=2)
    config = QueryProcessorConfig(llm=llm, seed=2, optimize=False, max_cost_usd=0.01)
    result, report = (
        Dataset.from_source(enron_bundle.source())
        .sem_filter(en.FILTER_MENTIONS)
        .sem_filter(en.FILTER_FIRSTHAND)
        .run_with_report(config)
    )
    assert "truncated" in explain_analyze(result, report)
