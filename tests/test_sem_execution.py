"""Tests for the execution engine and end-to-end Dataset runs."""

import pytest

from repro.data.datasets import enron as en
from repro.data.schemas import Field
from repro.llm.oracle import SemanticOracle
from repro.llm.simulated import SimulatedLLM
from repro.sem import Dataset, MaxQuality, QueryProcessorConfig


def _config(bundle, seed=0, **kwargs):
    llm = SimulatedLLM(oracle=SemanticOracle(bundle.registry), seed=seed)
    defaults = dict(llm=llm, policy=MaxQuality(), seed=seed)
    defaults.update(kwargs)
    return QueryProcessorConfig(**defaults)


def test_end_to_end_filter_map(enron_bundle):
    config = _config(enron_bundle)
    result = (
        Dataset.from_source(enron_bundle.source())
        .sem_filter(en.FILTER_RELEVANT)
        .sem_map(Field("x_sender", str, "sender"), en.MAP_SENDER)
        .run(config)
    )
    assert 30 <= len(result.records) <= 45
    assert all(record.get("x_sender") for record in result.records)


def test_operator_stats_recorded(enron_bundle):
    config = _config(enron_bundle)
    result = (
        Dataset.from_source(enron_bundle.source())
        .sem_filter(en.FILTER_RELEVANT)
        .run(config)
    )
    labels = [stats.label for stats in result.operator_stats]
    assert labels[0].startswith("Scan")
    filter_stats = result.operator_stats[1]
    assert filter_stats.records_in == 250
    assert filter_stats.records_out == len(result.records)
    assert filter_stats.cost_usd > 0
    assert filter_stats.llm_calls >= 250
    assert 0 < filter_stats.selectivity < 1


def test_totals_match_tracker(enron_bundle):
    config = _config(enron_bundle)
    checkpoint_cost = config.llm.tracker.total().cost_usd
    result = (
        Dataset.from_source(enron_bundle.source())
        .sem_filter(en.FILTER_RELEVANT)
        .run(config)
    )
    spent = config.llm.tracker.total().cost_usd - checkpoint_cost
    assert spent == pytest.approx(
        result.total_cost_usd + result.optimization_cost_usd, abs=1e-9
    )


def test_iterator_semantics_process_every_record(enron_bundle):
    """The paper's point: a semantic filter reads all records."""
    config = _config(enron_bundle, optimize=False)
    result = (
        Dataset.from_source(enron_bundle.source())
        .sem_filter(en.FILTER_RELEVANT)
        .run(config)
    )
    assert result.operator_stats[1].llm_calls == 250


def test_parallelism_reduces_time_not_cost(enron_bundle):
    sequential = _config(enron_bundle, parallelism=1, optimize=False)
    result_seq = (
        Dataset.from_source(enron_bundle.source()).sem_filter(en.FILTER_RELEVANT).run(sequential)
    )
    parallel = _config(enron_bundle, parallelism=8, optimize=False)
    result_par = (
        Dataset.from_source(enron_bundle.source()).sem_filter(en.FILTER_RELEVANT).run(parallel)
    )
    assert result_par.total_time_s < 0.5 * result_seq.total_time_s
    assert result_par.total_cost_usd == pytest.approx(result_seq.total_cost_usd)


def test_limit_truncates_output(enron_bundle):
    config = _config(enron_bundle)
    result = (
        Dataset.from_source(enron_bundle.source())
        .sem_filter(en.FILTER_RELEVANT)
        .limit(5)
        .run(config)
    )
    assert len(result.records) == 5


def test_summary_renders(enron_bundle):
    config = _config(enron_bundle)
    result = Dataset.from_source(enron_bundle.source()).limit(3).run(config)
    text = result.summary()
    assert "records: 3" in text


def test_run_with_report_exposes_choices(enron_bundle):
    config = _config(enron_bundle)
    _result, report = (
        Dataset.from_source(enron_bundle.source())
        .sem_filter(en.FILTER_RELEVANT)
        .run_with_report(config)
    )
    assert report.optimized
    assert any("SemFilter" in label for label in report.chosen_models)
    assert report.estimate is not None
    assert report.estimate.cost_usd > 0


def test_deterministic_across_runs(enron_bundle):
    def run():
        config = _config(enron_bundle, seed=99)
        result = (
            Dataset.from_source(enron_bundle.source())
            .sem_filter(en.FILTER_RELEVANT)
            .run(config)
        )
        return (
            [record["filename"] for record in result.records],
            result.total_cost_usd,
        )

    assert run() == run()
