"""Tests for UPDATE and DELETE."""

import pytest

from repro.errors import SQLExecutionError, SQLSyntaxError
from repro.sql import Database
from repro.sql.parser import parse_sql


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE items (name TEXT, qty INTEGER, price REAL)")
    database.execute(
        "INSERT INTO items VALUES ('apple', 5, 1.5), ('banana', 0, 0.5), "
        "('cherry', 12, 4.0)"
    )
    return database


def test_update_with_where(db):
    result = db.execute("UPDATE items SET qty = 10 WHERE name = 'apple'")
    assert result.rows[0][0] == 1
    assert db.execute("SELECT qty FROM items WHERE name = 'apple'").scalar() == 10


def test_update_all_rows(db):
    result = db.execute("UPDATE items SET price = price * 2")
    assert result.rows[0][0] == 3
    assert db.execute("SELECT SUM(price) FROM items").scalar() == pytest.approx(12.0)


def test_update_expression_references_row(db):
    db.execute("UPDATE items SET qty = qty + 1 WHERE qty > 0")
    rows = db.query("SELECT name, qty FROM items ORDER BY name")
    assert [row["qty"] for row in rows] == [6, 0, 13]


def test_update_multiple_assignments(db):
    db.execute("UPDATE items SET qty = 99, price = 9.99 WHERE name = 'banana'")
    row = db.query("SELECT qty, price FROM items WHERE name = 'banana'")[0]
    assert row == {"qty": 99, "price": 9.99}


def test_update_coerces_types(db):
    with pytest.raises(SQLExecutionError):
        db.execute("UPDATE items SET qty = 'lots'")


def test_update_unknown_column_rejected(db):
    with pytest.raises(SQLExecutionError):
        db.execute("UPDATE items SET missing = 1")


def test_delete_with_where(db):
    result = db.execute("DELETE FROM items WHERE qty = 0")
    assert result.rows[0][0] == 1
    assert db.execute("SELECT COUNT(*) FROM items").scalar() == 2


def test_delete_all(db):
    result = db.execute("DELETE FROM items")
    assert result.rows[0][0] == 3
    assert db.execute("SELECT COUNT(*) FROM items").scalar() == 0


def test_delete_null_where_matches_nothing(db):
    db.execute("INSERT INTO items VALUES ('dud', NULL, 1.0)")
    # qty > 0 is NULL for the dud row, so it survives.
    db.execute("DELETE FROM items WHERE qty > 0")
    names = {row["name"] for row in db.query("SELECT name FROM items")}
    assert "dud" in names and "banana" in names


def test_update_parse_requires_equals():
    with pytest.raises(SQLSyntaxError):
        parse_sql("UPDATE t SET a 5")


def test_delete_requires_from():
    with pytest.raises(SQLSyntaxError):
        parse_sql("DELETE items")
