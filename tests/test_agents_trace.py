"""Tests for agent traces."""

from repro.agents.trace import AgentStep, AgentTrace


def _trace():
    trace = AgentTrace("the task")
    trace.add(AgentStep(0, "print(1)", "1", cost_usd=0.01, time_s=2.0))
    trace.add(AgentStep(1, "x = 2", "", error=None, cost_usd=0.02, time_s=1.0))
    trace.add(AgentStep(2, "print(x)", "2", cost_usd=0.03, time_s=1.0))
    return trace


def test_last_observation_skips_empty():
    trace = AgentTrace("t")
    trace.add(AgentStep(0, "c", "first obs"))
    trace.add(AgentStep(1, "c", ""))
    assert trace.last_observation() == "first obs"


def test_last_observation_empty_trace():
    assert AgentTrace("t").last_observation() == ""


def test_total_cost_sums_steps():
    assert _trace().total_cost() == 0.06


def test_render_contains_all_steps():
    text = _trace().render()
    assert "step 0" in text and "step 2" in text
    assert "the task" in text


def test_render_truncates_long_code():
    trace = AgentTrace("t")
    trace.add(AgentStep(0, "x" * 1000, "obs"))
    assert "..." in trace.steps[0].render(max_chars=100)


def test_render_includes_errors():
    trace = AgentTrace("t")
    trace.add(AgentStep(0, "bad", "", error="KaboomError"))
    assert "KaboomError" in trace.render()


def test_summary_mentions_task_and_observations():
    summary = _trace().summary()
    assert "the task" in summary
    assert "3 step(s)" in summary


def test_len_and_observations():
    trace = _trace()
    assert len(trace) == 3
    assert trace.observations() == ["1", "", "2"]
