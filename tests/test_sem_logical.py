"""Tests for logical plans and validation."""

import pytest

from repro.data.records import DataRecord
from repro.data.schemas import Field, Schema
from repro.data.sources import MemorySource
from repro.errors import PlanError
from repro.sem import logical as L
from repro.sem.dataset import Dataset


def _source(n=3):
    return MemorySource(
        [DataRecord({"i": index}) for index in range(n)],
        Schema([Field("i", int)]),
        source_id="nums",
    )


def _plan():
    return (
        Dataset.from_source(_source())
        .sem_filter("keep interesting records")
        .limit(2)
        .plan()
    )


def test_operators_leaves_first():
    ops = _plan().operators()
    assert isinstance(ops[0], L.ScanOp)
    assert isinstance(ops[1], L.SemFilterOp)
    assert isinstance(ops[2], L.LimitOp)


def test_explain_renders_root_first():
    text = _plan().explain()
    lines = text.splitlines()
    assert lines[0].startswith("Limit")
    assert lines[-1].strip().startswith("Scan")


def test_replace_chain_rebuilds_links():
    plan = _plan()
    chain = plan.operators()
    rebuilt = plan.replace_chain([chain[0], chain[2], chain[1]])
    ops = rebuilt.operators()
    assert isinstance(ops[1], L.LimitOp)
    assert isinstance(ops[2], L.SemFilterOp)
    assert ops[1].child is ops[0]


def test_replace_chain_empty_rejected():
    with pytest.raises(PlanError):
        _plan().replace_chain([])


def test_validate_accepts_good_plan():
    L.validate_plan(_plan())  # no raise


def test_validate_rejects_sourceless_scan():
    with pytest.raises(PlanError):
        L.validate_plan(L.LogicalPlan(L.ScanOp(child=None, source=None)))


def test_validate_rejects_orphan_operator():
    with pytest.raises(PlanError):
        L.validate_plan(L.LogicalPlan(L.SemFilterOp(child=None, instruction="x")))


def test_validate_rejects_negative_limit():
    plan = L.LogicalPlan(
        L.LimitOp(child=L.ScanOp(child=None, source=_source()), n=-1)
    )
    with pytest.raises(PlanError):
        L.validate_plan(plan)


def test_validate_rejects_retrieve_off_scan():
    scan = L.ScanOp(child=None, source=_source())
    limit = L.LimitOp(child=scan, n=1)
    plan = L.LogicalPlan(L.RetrieveOp(child=limit, query="q", k=2))
    with pytest.raises(PlanError):
        L.validate_plan(plan)


def test_is_linear_detects_joins():
    left = Dataset.from_source(_source())
    right = Dataset.from_source(_source())
    joined = left.sem_join(right, "records refer to the same entity")
    assert not joined.plan().is_linear()
    assert _plan().is_linear()


def test_labels_are_informative():
    ops = _plan().operators()
    assert "Scan(nums)" == ops[0].label()
    assert "keep interesting" in ops[1].label()
