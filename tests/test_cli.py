"""Tests for the CLI."""

import io
from contextlib import redirect_stdout

import pytest

from repro.cli import build_parser, main


def _run(argv):
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        code = main(argv)
    return code, buffer.getvalue()


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_table1_single_trial():
    code, output = _run(["table1", "--trials", "1"])
    assert code == 0
    assert "Sem. Ops" in output and "PZ compute" in output


def test_table2_single_trial():
    code, output = _run(["table2", "--trials", "1"])
    assert code == 0
    assert "CodeAgent+" in output and "Recall" in output


def test_demo_runs():
    code, output = _run(["demo"])
    assert code == 0
    assert "compute answer" in output


def test_query_on_legal_dataset():
    code, output = _run(
        [
            "query",
            "Compute the ratio between the number of identity theft reports "
            "in the year 2024 and the number of identity theft reports in "
            "the year 2001.",
            "--dataset",
            "legal",
        ]
    )
    assert code == 0
    assert "ratio" in output


def test_query_rejects_unknown_dataset():
    with pytest.raises(SystemExit):
        _run(["query", "anything", "--dataset", "nope"])
