"""Tests for the scripted baseline policies (behavioural contracts)."""

import statistics

from repro.agents.codeagent import CodeAgent
from repro.agents.filetools import build_file_tools
from repro.agents.policies.deep_research import (
    EnronCodeAgentPolicy,
    KramabenchCodeAgentPolicy,
    filename_tokens,
    find_year_value,
    read_batch_code,
    split_file_sections,
)
from repro.agents.policies.semantic_tools import SemanticToolsCodeAgentPolicy
from repro.agents.semtools import build_semantic_tools
from repro.bench.metrics import set_metrics
from repro.data.datasets import enron as en
from repro.data.datasets import kramabench as kb
from repro.llm.oracle import SemanticOracle
from repro.llm.simulated import SimulatedLLM


# ---------------------------------------------------------------------------
# Helpers used by policies
# ---------------------------------------------------------------------------


def test_filename_tokens_split_underscores():
    assert "identity" in filename_tokens("identity_theft_reports_2024.csv")
    assert "2024" in filename_tokens("identity_theft_reports_2024.csv")


def test_split_file_sections_roundtrip():
    observation = (
        "<<<FILE>>> a.csv\nline one\nline two\n<<<FILE>>> b.csv\nother\n"
    )
    sections = split_file_sections(observation)
    assert sections["a.csv"] == "line one\nline two"
    assert sections["b.csv"] == "other"


def test_read_batch_code_is_valid_python():
    import ast

    ast.parse(read_batch_code(["x.csv", "y.csv"]))


def test_find_year_value_csv_identity_theft_column():
    text = "Year,Fraud Reports,Identity Theft Reports\n2001,100,86250\n2002,1,2\n"
    assert find_year_value(text, 2001) == 86250


def test_find_year_value_prose():
    text = "Consumers filed roughly 86,000 identity theft reports in 2001."
    assert find_year_value(text, 2001) == 86000


def test_find_year_value_absent():
    assert find_year_value("no years here", 2001) is None


# ---------------------------------------------------------------------------
# Kramabench policy behaviour
# ---------------------------------------------------------------------------


def _run_kramabench(bundle, seed):
    llm = SimulatedLLM(oracle=SemanticOracle(bundle.registry), seed=seed)
    agent = CodeAgent(
        llm, build_file_tools(bundle.corpus), KramabenchCodeAgentPolicy(), seed=seed
    )
    return agent.run(kb.QUERY_RATIO)


def test_kramabench_agent_always_answers(legal_bundle):
    for seed in range(6):
        result = _run_kramabench(legal_bundle, seed)
        assert result.finished
        assert isinstance(result.answer, dict)
        assert result.answer.get("ratio") is not None


def test_kramabench_agent_err_in_paper_band(legal_bundle):
    truth = legal_bundle.ground_truth["ratio"]
    errors = []
    for seed in range(8):
        ratio = _run_kramabench(legal_bundle, seed).answer["ratio"]
        errors.append(abs(ratio - truth) / truth * 100)
    mean_error = statistics.mean(errors)
    # Paper: 27.56% average error; we accept a generous band around it.
    assert 10 <= mean_error <= 50


def test_kramabench_agent_reads_bounded_number_of_files(legal_bundle):
    result = _run_kramabench(legal_bundle, 0)
    reads = sum(step.code.count("read_file") for step in result.trace.steps)
    assert reads <= 4  # batched read loops, not per-file calls


# ---------------------------------------------------------------------------
# Enron policies behaviour
# ---------------------------------------------------------------------------


def test_enron_naive_low_recall_high_precision(enron_bundle):
    gold = enron_bundle.ground_truth["relevant_filenames"]
    recalls, precisions = [], []
    for seed in range(4):
        llm = SimulatedLLM(oracle=SemanticOracle(enron_bundle.registry), seed=seed)
        agent = CodeAgent(
            llm, build_file_tools(enron_bundle.corpus), EnronCodeAgentPolicy(), seed=seed
        )
        result = agent.run(en.QUERY_RELEVANT)
        metrics = set_metrics(gold, result.answer or [])
        recalls.append(metrics.recall)
        precisions.append(metrics.precision)
    assert statistics.mean(recalls) < 0.6
    assert statistics.mean(precisions) > 0.7


def test_enron_naive_extracts_deal_names_from_task(enron_bundle):
    policy = EnronCodeAgentPolicy()
    keywords = policy._deal_keywords(en.QUERY_RELEVANT)
    assert "raptor" in keywords and "death star" in keywords


def test_codeagent_plus_runs_filters_over_full_corpus(enron_bundle):
    llm = SimulatedLLM(oracle=SemanticOracle(enron_bundle.registry), seed=0)
    tools = build_file_tools(enron_bundle.corpus)
    semantic = build_semantic_tools(enron_bundle.records(), llm)
    for name in semantic.names():
        tools.add(semantic.get(name))
    policy = SemanticToolsCodeAgentPolicy(
        filters=[en.FILTER_MENTIONS, en.FILTER_FIRSTHAND],
        maps=[("summary", en.MAP_SUMMARY)],
    )
    agent = CodeAgent(llm, tools, policy, seed=0, max_steps=8)
    result = agent.run(en.QUERY_RELEVANT)
    assert result.finished
    # Two full-corpus filters + one full-corpus map = >= 750 LLM judgments.
    semantic_calls = [
        event for event in llm.tracker.events if "codeagent-plus" in event.tag
    ]
    assert len(semantic_calls) >= 750


def test_codeagent_plus_quality_high(enron_bundle):
    gold = enron_bundle.ground_truth["relevant_filenames"]
    llm = SimulatedLLM(oracle=SemanticOracle(enron_bundle.registry), seed=1)
    tools = build_file_tools(enron_bundle.corpus)
    semantic = build_semantic_tools(enron_bundle.records(), llm)
    for name in semantic.names():
        tools.add(semantic.get(name))
    policy = SemanticToolsCodeAgentPolicy(
        filters=[en.FILTER_MENTIONS, en.FILTER_FIRSTHAND],
        maps=[("summary", en.MAP_SUMMARY)],
    )
    result = CodeAgent(llm, tools, policy, seed=1, max_steps=8).run(en.QUERY_RELEVANT)
    returned = [row["key"] for row in result.answer]
    metrics = set_metrics(gold, returned)
    assert metrics.f1 > 0.9


def test_semantic_tools_policy_requires_filters():
    import pytest

    with pytest.raises(ValueError):
        SemanticToolsCodeAgentPolicy(filters=[], maps=[])


def test_sem_filter_subset_tool_limits_scope(enron_bundle):
    llm = SimulatedLLM(oracle=SemanticOracle(enron_bundle.registry), seed=0)
    tools = build_semantic_tools(enron_bundle.records(), llm)
    keys = [record["filename"] for record in enron_bundle.records()[:10]]
    matches = tools.get("sem_filter_subset")(en.FILTER_MENTIONS, keys)
    assert set(matches) <= set(keys)
    assert llm.tracker.total().calls == 10
