"""Tests for the synthetic Kramabench legal corpus."""

import pytest

from repro.data.datasets import generate_legal_corpus
from repro.data.datasets import kramabench as kb
from repro.data.tabular import parse_csv
from repro.llm.oracle import SemanticOracle


def test_exactly_132_files(legal_bundle):
    assert len(legal_bundle.corpus) == 132


def test_generation_is_deterministic():
    a = generate_legal_corpus(seed=7)
    b = generate_legal_corpus(seed=7)
    assert a.corpus.list_files() == b.corpus.list_files()
    name = a.corpus.list_files()[10]
    assert a.corpus.read_file(name) == b.corpus.read_file(name)


def test_different_seed_changes_distractors_not_ground_truth():
    a = generate_legal_corpus(seed=1)
    b = generate_legal_corpus(seed=2)
    # National endpoints are pinned across seeds; state-level facts (which
    # state leads) legitimately vary with the seeded weights.
    for key in ("identity_theft_2001", "identity_theft_2024", "ratio", "ground_truth_file"):
        assert a.ground_truth[key] == b.ground_truth[key]


def test_ground_truth_file_contents(legal_bundle):
    text = legal_bundle.corpus.read_file(legal_bundle.ground_truth["ground_truth_file"])
    rows = parse_csv(text)
    assert len(rows) == 24
    by_year = {row["Year"]: row for row in rows}
    assert int(by_year["2001"]["Identity Theft Reports"]) == kb.IT_2001
    assert int(by_year["2024"]["Identity Theft Reports"]) == kb.IT_2024


def test_true_ratio_matches_endpoints(legal_bundle):
    assert legal_bundle.ground_truth["ratio"] == pytest.approx(kb.IT_2024 / kb.IT_2001)


def test_needle_in_haystack_structure(legal_bundle):
    oracle = SemanticOracle(legal_bundle.registry)
    with_both_years = [
        record["filename"]
        for record in legal_bundle.records()
        if oracle.judge_filter(kb.FILTER_STATS_BOTH, record).truth
        and oracle.judge_filter(kb.FILTER_STATS_BOTH, record).resolved
    ]
    assert with_both_years == [legal_bundle.ground_truth["ground_truth_file"]]


def test_ambiguous_files_present_and_hard(legal_bundle):
    records = {record["filename"]: record for record in legal_bundle.records()}
    from repro.llm.oracle import DIFFICULTY_PREFIX

    for name in (
        "identity_theft_report_trends_overview_2024.html",
        "military_consumer_identity_theft_2001_2024.csv",
        "identity_theft_hotline_calls_2001_2024.csv",
    ):
        record = records[name]
        assert record.annotations[kb.INTENT_STATS_BOTH] is False
        assert record.annotations[DIFFICULTY_PREFIX + kb.INTENT_STATS_BOTH] == 1.0


def test_distractor_values_differ_from_truth(legal_bundle):
    records = {record["filename"]: record for record in legal_bundle.records()}
    military = records["military_consumer_identity_theft_2001_2024.csv"]
    assert military.annotations[kb.INTENT_RATIO_VALUE] != pytest.approx(
        legal_bundle.ground_truth["ratio"], rel=0.05
    )


def test_state_files_mention_but_lack_2001(legal_bundle):
    records = {record["filename"]: record for record in legal_bundle.records()}
    texas = records["identity_theft_reports_texas_2020_2024.csv"]
    assert texas.annotations[kb.INTENT_MENTIONS_IT] is True
    assert kb.INTENT_IT_2001_VALUE not in texas.annotations
    assert "2001" not in texas["contents"]


def test_intent_resolution_for_canonical_instructions(legal_bundle):
    registry = legal_bundle.registry
    assert registry.resolve(kb.FILTER_MENTIONS).key == kb.INTENT_MENTIONS_IT
    assert registry.resolve(kb.FILTER_STATS_BOTH).key == kb.INTENT_STATS_BOTH
    assert registry.resolve(kb.FILTER_NATIONAL_2024).key == kb.INTENT_NATIONAL_2024
    assert registry.resolve(kb.EXTRACT_IT_2001).key == kb.INTENT_IT_2001_VALUE
    assert registry.resolve(kb.EXTRACT_IT_2024).key == kb.INTENT_IT_2024_VALUE
    assert registry.resolve(kb.MAP_RATIO).key == kb.INTENT_RATIO_VALUE


def test_every_file_judgeable_on_core_filters(legal_bundle):
    oracle = SemanticOracle(legal_bundle.registry)
    for record in legal_bundle.records():
        result = oracle.judge_filter(kb.FILTER_MENTIONS, record)
        assert result.resolved, record["filename"]


def test_most_files_are_distractors(legal_bundle):
    oracle = SemanticOracle(legal_bundle.registry)
    mentions = sum(
        1
        for record in legal_bundle.records()
        if oracle.judge_filter(kb.FILTER_MENTIONS, record).truth
    )
    # State files + ambiguous + reviews + guidance pages mention identity
    # theft, but they are still a strict subset of the lake.
    assert 55 <= mentions <= 80


def test_annual_review_2024_has_correct_value(legal_bundle):
    records = {record["filename"]: record for record in legal_bundle.records()}
    review = records["consumer_sentinel_annual_review_2024.html"]
    assert review.annotations[kb.INTENT_IT_2024_VALUE] == kb.IT_2024
