"""Tests for the CodeAgent loop with small scripted policies."""

import pytest

from repro.agents.codeagent import CodeAgent
from repro.agents.policies.base import AgentPolicy, ScriptedPolicy
from repro.agents.tools import Tool, ToolRegistry
from repro.errors import AgentError
from repro.llm.simulated import SimulatedLLM


class _AnswerIn(ScriptedPolicy):
    """Explores for one step, then answers."""

    def step_0(self, task, trace, tools):
        return "x = 2 + 2\nprint('computed', x)"

    def step_1(self, task, trace, tools):
        assert "computed 4" in trace.last_observation()
        return "final_answer(x)"


class _NeverAnswers(AgentPolicy):
    def next_code(self, task, trace, tools):
        return "print('spinning')"


class _GivesUp(ScriptedPolicy):
    def step_0(self, task, trace, tools):
        return "print('tried once')"
    # no step_1: policy returns None -> premature termination


def _agent(policy, max_steps=6, **kwargs):
    return CodeAgent(
        SimulatedLLM(seed=0), ToolRegistry(), policy, max_steps=max_steps, **kwargs
    )


def test_agent_finishes_with_answer():
    result = _agent(_AnswerIn()).run("compute four")
    assert result.finished and result.answer == 4
    assert result.steps_used == 2


def test_agent_charges_cost_and_time_per_step():
    result = _agent(_AnswerIn()).run("compute four")
    assert result.cost_usd > 0
    assert result.time_s > 0
    assert all(step.cost_usd > 0 for step in result.trace.steps)


def test_agent_stops_at_max_steps():
    result = _agent(_NeverAnswers(), max_steps=3).run("never ends")
    assert not result.finished
    assert result.steps_used == 3
    assert result.answer is None


def test_agent_premature_termination():
    result = _agent(_GivesUp()).run("anything")
    assert not result.finished
    assert result.steps_used == 1


def test_agent_records_errors_in_trace():
    class Boom(ScriptedPolicy):
        def step_0(self, task, trace, tools):
            return "1 / 0"

        def step_1(self, task, trace, tools):
            assert trace.steps[-1].error
            return "final_answer('recovered')"

    result = _agent(Boom()).run("divide by zero")
    assert result.finished and result.answer == "recovered"
    assert "ZeroDivisionError" in result.trace.steps[0].error


def test_agent_tools_usable_from_code():
    tools = ToolRegistry([Tool("treble", "triples", lambda v: v * 3)])

    class UsesTool(ScriptedPolicy):
        def step_0(self, task, trace, tools):
            return "final_answer(treble(14))"

    agent = CodeAgent(SimulatedLLM(seed=0), tools, UsesTool())
    assert agent.run("use the tool").answer == 42


def test_agent_prompt_includes_context_note():
    captured = {}

    class Snoop(ScriptedPolicy):
        def step_0(self, task, trace, tools):
            return "final_answer('done')"

    llm = SimulatedLLM(seed=0)
    agent = CodeAgent(llm, ToolRegistry(), Snoop())
    agent.run("task text", context_note="THE-CONTEXT-NOTE")
    # The note costs tokens: compare against a run without it.
    cost_with = llm.tracker.total().cost_usd
    llm2 = SimulatedLLM(seed=0)
    CodeAgent(llm2, ToolRegistry(), Snoop()).run("task text")
    assert cost_with > llm2.tracker.total().cost_usd
    assert captured == {}


def test_agent_rejects_bad_max_steps():
    with pytest.raises(AgentError):
        _agent(_AnswerIn(), max_steps=0)


def test_same_seed_reproducible():
    def run():
        return _agent(_AnswerIn(), seed=7).run("task").cost_usd

    assert run() == run()


def test_observation_truncated():
    class BigPrinter(ScriptedPolicy):
        def step_0(self, task, trace, tools):
            return "print('x' * 100000)"

        def step_1(self, task, trace, tools):
            return "final_answer(len('done'))"

    result = _agent(BigPrinter()).run("print a lot")
    from repro.agents.codeagent import OBSERVATION_LIMIT

    assert len(result.trace.steps[0].observation) == OBSERVATION_LIMIT
