"""Unit tests for seeded fault injection, retry policy, and circuit breaker."""

import pytest

from repro.errors import (
    ConfigurationError,
    RateLimitError,
    TimeoutError,
    TransientAPIError,
    TransientLLMError,
)
from repro.llm.faults import CircuitBreaker, FaultConfig, FaultInjector, RetryPolicy


# ---------------------------------------------------------------------------
# FaultConfig
# ---------------------------------------------------------------------------


def test_fault_config_validates_rate():
    with pytest.raises(ConfigurationError):
        FaultConfig(rate=1.5)
    with pytest.raises(ConfigurationError):
        FaultConfig(rate=-0.1)


def test_fault_config_validates_kinds():
    with pytest.raises(ConfigurationError):
        FaultConfig(kinds=())
    with pytest.raises(ConfigurationError):
        FaultConfig(kinds=("rate_limit", "meteor_strike"))


def test_fault_config_embeddings_excluded_by_default():
    config = FaultConfig(rate=0.5)
    assert config.model_rate("text-embedding-3-small", is_embedding=True) == 0.0
    assert config.model_rate("gpt-4o", is_embedding=False) == 0.5


def test_fault_config_per_model_override():
    config = FaultConfig(rate=0.1, per_model_rates={"gpt-4o-mini": 0.4})
    assert config.model_rate("gpt-4o-mini", is_embedding=False) == 0.4
    assert config.model_rate("gpt-4o", is_embedding=False) == 0.1


# ---------------------------------------------------------------------------
# FaultInjector
# ---------------------------------------------------------------------------


@pytest.mark.smoke
def test_injector_same_seed_same_schedule():
    def schedule(seed):
        injector = FaultInjector(FaultConfig(rate=0.3), seed=seed)
        return [
            type(injector.draw("gpt-4o")).__name__ for _ in range(50)
        ]

    assert schedule(7) == schedule(7)
    assert schedule(7) != schedule(8)


def test_injector_zero_rate_never_faults():
    injector = FaultInjector(FaultConfig(rate=0.0), seed=0)
    assert all(injector.draw("gpt-4o") is None for _ in range(100))
    assert injector.injected == 0


def test_injector_rate_roughly_respected():
    injector = FaultInjector(FaultConfig(rate=0.2), seed=1)
    faults = sum(1 for _ in range(500) if injector.draw("gpt-4o") is not None)
    assert 60 <= faults <= 140  # 100 expected; generous deterministic band


def test_injector_produces_typed_errors():
    injector = FaultInjector(FaultConfig(rate=1.0), seed=0)
    kinds = {type(injector.draw("gpt-4o")) for _ in range(30)}
    assert kinds == {RateLimitError, TimeoutError, TransientAPIError}
    assert all(issubclass(kind, TransientLLMError) for kind in kinds)


def test_injector_rate_limit_carries_retry_after():
    injector = FaultInjector(
        FaultConfig(rate=1.0, kinds=("rate_limit",), retry_after_s=4.5), seed=0
    )
    fault = injector.draw("gpt-4o")
    assert isinstance(fault, RateLimitError)
    assert fault.retry_after_s == 4.5


def test_injector_burst_mode_correlates_failures():
    base = FaultConfig(rate=0.05)
    bursty = FaultConfig(rate=0.05, burst_length=10, burst_rate=1.0)
    n = 400

    def runs_of_failure(config):
        injector = FaultInjector(config, seed=3)
        outcomes = [injector.draw("gpt-4o") is not None for _ in range(n)]
        best = run = 0
        for failed in outcomes:
            run = run + 1 if failed else 0
            best = max(best, run)
        return best, sum(outcomes)

    base_run, base_total = runs_of_failure(base)
    burst_run, burst_total = runs_of_failure(bursty)
    assert burst_total > base_total
    assert burst_run > base_run  # failures cluster into windows


def test_injector_counts_by_kind():
    injector = FaultInjector(FaultConfig(rate=1.0), seed=0)
    for _ in range(20):
        injector.draw("gpt-4o")
    assert injector.injected == 20
    assert sum(injector.injected_by_kind.values()) == 20


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------


def test_retry_policy_validates():
    with pytest.raises(ConfigurationError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ConfigurationError):
        RetryPolicy(timeout_s=0)


@pytest.mark.smoke
def test_backoff_grows_exponentially_and_caps():
    policy = RetryPolicy(
        base_backoff_s=1.0, backoff_multiplier=2.0, max_backoff_s=5.0, jitter=0.0
    )
    waits = [policy.backoff_s(n) for n in (1, 2, 3, 4, 5)]
    assert waits == [1.0, 2.0, 4.0, 5.0, 5.0]


def test_backoff_jitter_is_seeded_and_bounded():
    policy = RetryPolicy(base_backoff_s=1.0, jitter=0.5)
    first = policy.backoff_s(1, None, "key-a")
    assert first == policy.backoff_s(1, None, "key-a")  # deterministic
    assert first != policy.backoff_s(1, None, "key-b")  # stream varies by key
    assert 0.5 <= first <= 1.5


def test_backoff_honors_retry_after_floor():
    policy = RetryPolicy(base_backoff_s=0.1, jitter=0.0)
    error = RateLimitError("429", retry_after_s=9.0)
    assert policy.backoff_s(1, error) == 9.0


# ---------------------------------------------------------------------------
# CircuitBreaker
# ---------------------------------------------------------------------------


def test_breaker_opens_after_threshold_and_half_opens_after_cooldown():
    breaker = CircuitBreaker(threshold=3, cooldown_s=10.0)
    now = 0.0
    assert breaker.allow(now)
    for _ in range(3):
        breaker.record_failure(now)
    assert breaker.state == "open"
    assert not breaker.allow(5.0)  # still cooling down
    assert breaker.allow(10.0)  # half-open probe allowed
    assert breaker.state == "half_open"
    breaker.record_success()
    assert breaker.state == "closed"


def test_breaker_reopens_on_half_open_failure():
    breaker = CircuitBreaker(threshold=2, cooldown_s=5.0)
    breaker.record_failure(0.0)
    breaker.record_failure(0.0)
    assert breaker.state == "open"
    assert breaker.allow(6.0)
    breaker.record_failure(6.0)  # probe fails: straight back to open
    assert breaker.state == "open"
    assert breaker.opened_at == 6.0
    assert breaker.times_opened == 2


def test_breaker_success_resets_consecutive_count():
    breaker = CircuitBreaker(threshold=2, cooldown_s=5.0)
    breaker.record_failure(0.0)
    breaker.record_success()
    breaker.record_failure(0.0)
    assert breaker.state == "closed"
