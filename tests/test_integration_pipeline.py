"""End-to-end integration: the full vision pipeline.

Context -> search -> compute -> materialize -> SQL, exercising every
subsystem together, plus cross-subsystem accounting invariants.
"""

import pytest

from repro.core.runtime import AnalyticsRuntime
from repro.data.datasets import enron as en
from repro.data.datasets import kramabench as kb

pytestmark = pytest.mark.slow


def test_full_pipeline_legal(legal_bundle):
    runtime = AnalyticsRuntime.for_bundle(legal_bundle, seed=2024)
    context = runtime.make_context(legal_bundle, build_index=True)

    # 1. search: enrich the context.
    found = runtime.search(context, "identity theft report statistics")
    assert found.output_context.parent is context

    # 2. compute: answer the evaluation query on the enriched context.
    result = runtime.compute(found.output_context, kb.QUERY_RATIO)
    truth = legal_bundle.ground_truth["ratio"]
    assert result.answer["ratio"] == pytest.approx(truth, rel=0.02)

    # 3. materialize the answer and query it with SQL.
    runtime.materialize_rows(
        "answers",
        [{"query": "legal-easy-3", "ratio": result.answer["ratio"]}],
    )
    stored = runtime.sql("SELECT ratio FROM answers WHERE query = 'legal-easy-3'")
    assert stored.scalar() == pytest.approx(truth, rel=0.02)

    # 4. every context materialized along the way is indexed for reuse.
    assert len(runtime.context_manager) >= 3


def test_full_pipeline_enron_to_sql(enron_bundle):
    runtime = AnalyticsRuntime.for_bundle(enron_bundle, seed=77)
    context = runtime.make_context(enron_bundle)
    result = runtime.compute(context, en.QUERY_RELEVANT)
    rows = [row for row in result.answer if isinstance(row, dict)]
    assert rows and all("sender" in row for row in rows)

    runtime.materialize_rows("relevant_emails", rows)
    count = runtime.sql("SELECT COUNT(*) FROM relevant_emails").scalar()
    assert count == len(rows)
    top = runtime.sql(
        "SELECT sender, COUNT(*) AS n FROM relevant_emails "
        "GROUP BY sender ORDER BY n DESC LIMIT 1"
    ).to_dicts()
    assert top[0]["n"] >= 1


def test_accounting_is_consistent_end_to_end(enron_bundle):
    runtime = AnalyticsRuntime.for_bundle(enron_bundle, seed=5)
    context = runtime.make_context(enron_bundle)
    result = runtime.compute(context, en.QUERY_RELEVANT)
    # Everything the compute episode spent is visible in the runtime total
    # (the compute's own accounting is a subset: the operator registration
    # embeddings land after the agent finishes).
    assert runtime.usage().cost_usd >= result.cost_usd
    assert runtime.elapsed_s >= result.time_s
    assert result.cost_usd > 0


def test_same_llm_shared_across_operators(legal_bundle):
    """All operators bill one tracker, so budgets can span a session."""
    from repro.errors import BudgetExceededError
    from repro.llm.oracle import SemanticOracle
    from repro.llm.simulated import SimulatedLLM
    from repro.llm.usage import UsageTracker

    llm = SimulatedLLM(
        oracle=SemanticOracle(legal_bundle.registry),
        tracker=UsageTracker(budget_usd=0.001),
        seed=0,
    )
    runtime = AnalyticsRuntime(llm=llm, seed=0)
    context = runtime.make_context(legal_bundle)
    with pytest.raises(BudgetExceededError):
        runtime.compute(context, kb.QUERY_RATIO)
