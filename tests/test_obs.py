"""Tests for the observability layer: tracer, metrics, engine spans."""

import time

import pytest

from repro.data.datasets import enron as en
from repro.llm.faults import FaultConfig, FaultInjector, RetryPolicy
from repro.llm.oracle import SemanticOracle
from repro.llm.simulated import SimulatedLLM
from repro.obs import (
    NOOP_TRACER,
    NULL_METRICS,
    MetricsRegistry,
    Tracer,
    get_default_metrics,
    get_default_tracer,
    set_default_metrics,
    set_default_tracer,
    validate_spans,
    walk,
)
from repro.sem import Dataset, QueryProcessorConfig
from repro.utils.clock import VirtualClock


def _traced_llm(bundle, seed=2):
    tracer = Tracer()
    metrics = MetricsRegistry()
    llm = SimulatedLLM(
        oracle=SemanticOracle(bundle.registry),
        seed=seed,
        tracer=tracer,
        metrics=metrics,
    )
    return llm, tracer, metrics


def _two_filter_query(bundle, llm, **config_kwargs):
    config = QueryProcessorConfig(llm=llm, seed=2, **config_kwargs)
    dataset = (
        Dataset.from_source(bundle.source())
        .sem_filter(en.FILTER_MENTIONS)
        .sem_filter(en.FILTER_FIRSTHAND)
    )
    return dataset.run_with_report(config)


# ---------------------------------------------------------------------------
# Tracer fundamentals
# ---------------------------------------------------------------------------


def test_stack_spans_nest_and_read_the_clock():
    clock = VirtualClock()
    tracer = Tracer(clock)
    with tracer.span("outer", kind="query") as outer:
        clock.advance(5.0)
        with tracer.span("inner", kind="operator") as inner:
            clock.advance(2.0)
        clock.advance(1.0)
    assert outer.start_s == 0.0 and outer.end_s == 8.0
    assert inner.start_s == 5.0 and inner.end_s == 7.0
    assert inner.parent_id == outer.span_id
    validate_spans(tracer.spans)


def test_add_span_defaults_parent_to_stack_top():
    clock = VirtualClock()
    tracer = Tracer(clock)
    with tracer.span("outer") as outer:
        clock.advance(10.0)
        placed = tracer.add_span("cell", "cell", 1.0, 4.0, track="stage 0")
    assert placed.parent_id == outer.span_id
    assert placed.track == "stage 0"
    validate_spans(tracer.spans)


def test_exception_unwinding_closes_spans():
    clock = VirtualClock()
    tracer = Tracer(clock)
    with pytest.raises(RuntimeError):
        with tracer.span("outer"):
            with tracer.span("inner"):
                clock.advance(1.0)
                raise RuntimeError("boom")
    assert not tracer.open_spans()
    validate_spans(tracer.spans)


def test_walk_yields_depth_first():
    clock = VirtualClock()
    tracer = Tracer(clock)
    with tracer.span("a"):
        with tracer.span("b"):
            pass
        with tracer.span("c"):
            pass
    names = [(span.name, depth) for span, depth in walk(tracer.spans)]
    assert names == [("a", 0), ("b", 1), ("c", 1)]


def test_default_tracer_install_and_restore():
    tracer = Tracer()
    previous = set_default_tracer(tracer)
    try:
        assert get_default_tracer() is tracer
    finally:
        set_default_tracer(previous)
    assert get_default_tracer() is previous
    assert set_default_tracer(None) is previous
    assert get_default_tracer() is NOOP_TRACER


# ---------------------------------------------------------------------------
# No-op defaults
# ---------------------------------------------------------------------------


def test_noop_tracer_is_inert_and_allocation_free():
    ctx_a = NOOP_TRACER.span("anything", kind="query", attr=1)
    ctx_b = NOOP_TRACER.span("else")
    assert ctx_a is ctx_b  # shared singleton context: no per-call allocation
    with ctx_a as span:
        span.attributes["discarded"] = True
    assert span.attributes == {}
    assert NOOP_TRACER.enabled is False
    assert NOOP_TRACER.add_span("x", "y", 0.0, 1.0) is span


def test_llm_defaults_to_noop_observability(enron_bundle):
    llm = SimulatedLLM(oracle=SemanticOracle(enron_bundle.registry), seed=0)
    assert llm.tracer is NOOP_TRACER
    assert llm.metrics is NULL_METRICS
    llm.complete("hello", tag="t")
    assert list(llm.tracer.spans) == []


def test_noop_guard_overhead_is_bounded():
    """The disabled path is one attribute check; keep it within a coarse
    absolute budget so an accidental allocation-per-call regression fails."""
    tracer = NOOP_TRACER
    start = time.perf_counter()
    for _ in range(200_000):
        if tracer.enabled:  # pragma: no cover - never taken
            tracer.span("x")
    elapsed = time.perf_counter() - start
    assert elapsed < 1.0


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------


def test_counters_and_histograms():
    metrics = MetricsRegistry()
    metrics.counter("llm.calls").inc()
    metrics.counter("llm.calls").inc(2)
    metrics.histogram("latency").observe(1.0)
    metrics.histogram("latency").observe(3.0)
    snapshot = metrics.snapshot()
    assert snapshot["counters"]["llm.calls"] == 3
    hist = snapshot["histograms"]["latency"]
    assert hist["count"] == 2 and hist["mean"] == 2.0
    assert hist["min"] == 1.0 and hist["max"] == 3.0
    rendered = metrics.render(title="M")
    assert "llm.calls" in rendered and "latency" in rendered


def test_null_metrics_is_inert():
    counter = NULL_METRICS.counter("x")
    counter.inc()
    assert NULL_METRICS.snapshot() == {"counters": {}, "histograms": {}}
    assert "disabled" in NULL_METRICS.render(title="M")
    previous = set_default_metrics(MetricsRegistry())
    set_default_metrics(None)
    assert get_default_metrics() is NULL_METRICS
    set_default_metrics(previous if previous is not NULL_METRICS else None)


# ---------------------------------------------------------------------------
# Engine + substrate instrumentation
# ---------------------------------------------------------------------------


def test_barrier_execution_span_tree(enron_bundle):
    llm, tracer, metrics = _traced_llm(enron_bundle)
    result, _report = _two_filter_query(
        enron_bundle, llm, pipeline=False, parallelism=4
    )
    validate_spans(tracer.spans)
    assert not tracer.open_spans()

    query = tracer.by_kind("query")[0]
    assert query.end_s == pytest.approx(llm.clock.elapsed)
    operators = tracer.by_kind("operator")
    assert [span.parent_id for span in operators] == [query.span_id] * len(operators)
    labels = [span.name for span in operators]
    assert any("SemFilter" in label for label in labels)

    # Every per-call span sits inside its operator (or optimize) span.
    calls = tracer.by_kind("llm-call")
    assert calls, "barrier mode records per-call spans"
    by_id = {span.span_id: span for span in tracer.spans}
    for call in calls:
        parent = by_id[call.parent_id]
        assert call.end_s <= parent.end_s + 1e-6

    counters = metrics.snapshot()["counters"]
    assert counters["llm.calls"] == len(llm.tracker.events)
    assert result.operator_stats


def test_pipelined_sections_agree_with_schedule_makespan(enron_bundle):
    llm, tracer, _metrics = _traced_llm(enron_bundle)
    _two_filter_query(enron_bundle, llm, pipeline=True, parallelism=4)
    validate_spans(tracer.spans)

    sections = tracer.by_kind("pipeline-section")
    assert sections
    for section in sections:
        makespan = section.attributes["makespan_s"]
        assert section.duration_s == pytest.approx(makespan)
        cells = [
            span for span in tracer.spans
            if span.kind == "cell" and span.parent_id == section.span_id
        ]
        assert cells
        # Cells are placed on the reconstructed schedule: the last cell's
        # end, relative to the section start, is exactly the makespan.
        assert max(cell.end_s for cell in cells) - section.start_s == pytest.approx(
            makespan
        )
        # Distinct per-stage tracks make the overlap visible.
        assert {cell.track for cell in cells} >= {"stage 0", "stage 1"}


def test_wave_positioned_call_spans_overlap(enron_bundle):
    """With parallelism k>1, calls within one wave share a start time and
    occupy distinct slot tracks."""
    llm, tracer, _metrics = _traced_llm(enron_bundle)
    _two_filter_query(enron_bundle, llm, pipeline=False, parallelism=4)
    slot_calls = [
        span for span in tracer.by_kind("llm-call")
        if span.track and span.track.startswith("llm slot")
    ]
    assert slot_calls
    by_start: dict[float, set] = {}
    for span in slot_calls:
        by_start.setdefault(round(span.start_s, 9), set()).add(span.track)
    widths = [len(tracks) for tracks in by_start.values()]
    assert max(widths) > 1  # a genuine wave: overlapping calls, distinct slots


def test_fault_instrumentation(enron_bundle):
    tracer = Tracer()
    metrics = MetricsRegistry()
    llm = SimulatedLLM(
        oracle=SemanticOracle(enron_bundle.registry),
        seed=5,
        faults=FaultInjector(FaultConfig(rate=0.5), seed=5),
        retry=RetryPolicy(max_attempts=6),
        tracer=tracer,
        metrics=metrics,
    )
    from repro.errors import TransientLLMError

    for index in range(20):
        try:
            llm.complete(f"probe {index}", tag="probe")
        except TransientLLMError:
            pass  # a gave-up call still leaves a span + counters behind
    counters = metrics.snapshot()["counters"]
    assert counters.get("llm.retries", 0) > 0
    assert counters.get("llm.failed_attempts", 0) > 0
    assert any(name.startswith("faults.injected.") for name in counters)
    retried = [
        span for span in tracer.by_kind("llm-call")
        if span.attributes.get("retries", 0) > 0
    ]
    assert retried


def test_untagged_calls_inherit_the_current_span_name(enron_bundle):
    llm, tracer, _metrics = _traced_llm(enron_bundle)
    with tracer.span("adhoc-analysis"):
        llm.complete("what is up")
    assert llm.tracker.events[-1].tag == "adhoc-analysis"


def test_real_runs_leave_no_untagged_usage_events(enron_bundle):
    llm, tracer, _metrics = _traced_llm(enron_bundle)
    _two_filter_query(enron_bundle, llm, pipeline=True, parallelism=2)
    assert all(event.tag for event in llm.tracker.events)


def test_agent_episode_step_and_tool_spans(legal_bundle):
    from repro.core.runtime import AnalyticsRuntime
    from repro.data.datasets.kramabench import QUERY_RATIO

    tracer = Tracer()
    metrics = MetricsRegistry()
    runtime = AnalyticsRuntime.for_bundle(
        legal_bundle, seed=7, tracer=tracer, metrics=metrics
    )
    context = runtime.make_context(legal_bundle)
    runtime.compute(context, QUERY_RATIO)
    validate_spans(tracer.spans)

    episodes = tracer.by_kind("agent-episode")
    steps = tracer.by_kind("agent-step")
    tools = tracer.by_kind("tool-call")
    assert episodes and steps and tools
    episode_ids = {span.span_id for span in episodes}
    assert all(span.parent_id in episode_ids for span in steps)
    counters = metrics.snapshot()["counters"]
    assert counters["agent.episodes"] >= 1
    assert counters["agent.steps"] == len(steps)
    assert runtime.tracer is tracer
    assert "agent.steps" in runtime.metrics_report()


def test_histogram_percentiles_nearest_rank():
    metrics = MetricsRegistry()
    hist = metrics.histogram("latency")
    for value in range(1, 101):  # 1..100
        hist.observe(float(value))
    assert hist.percentile(50) == 50.0
    assert hist.percentile(95) == 95.0
    assert hist.percentile(99) == 99.0
    assert hist.percentile(0) == 1.0  # nearest-rank floor: first sample
    snapshot = metrics.snapshot()["histograms"]["latency"]
    assert snapshot["p50"] == 50.0
    assert snapshot["p95"] == 95.0
    assert snapshot["p99"] == 99.0


def test_histogram_percentile_of_empty_is_zero():
    hist = MetricsRegistry().histogram("empty")
    assert hist.percentile(50) == 0.0
    assert NULL_METRICS.histogram("x").percentile(50) == 0.0


def test_histogram_decimation_is_deterministic_and_bounded():
    from repro.obs.metrics import SAMPLE_CAP

    def build():
        hist = MetricsRegistry().histogram("h")
        for value in range(3 * SAMPLE_CAP):
            hist.observe(float(value))
        return hist

    first, second = build(), build()
    assert len(first._samples) <= SAMPLE_CAP
    assert first._samples == second._samples
    assert first.percentile(50) == second.percentile(50)
    # The strided sample still tracks the distribution's spread.
    assert first.percentile(99) > first.percentile(50) > first.percentile(1)


def test_metrics_render_includes_percentile_columns():
    metrics = MetricsRegistry()
    metrics.histogram("latency").observe(2.0)
    rendered = metrics.render(title="M")
    assert "p50" in rendered and "p99" in rendered
