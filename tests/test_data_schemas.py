"""Tests for schemas and fields."""

import pytest

from repro.data.records import DataRecord
from repro.data.schemas import EMAIL_SCHEMA, TEXT_FILE_SCHEMA, Field, Schema
from repro.errors import SchemaError


def test_field_requires_identifier_name():
    with pytest.raises(SchemaError):
        Field("not a name")


def test_field_rejects_exotic_types():
    with pytest.raises(SchemaError):
        Field("x", type=complex)


def test_coerce_string_to_int():
    assert Field("n", int).coerce("42") == 42


def test_coerce_failure_returns_none():
    assert Field("n", int).coerce("not-a-number") is None


def test_coerce_bool_from_string():
    field = Field("b", bool)
    assert field.coerce("yes") is True
    assert field.coerce("no") is False


def test_coerce_none_passthrough():
    assert Field("n", int).coerce(None) is None


def test_coerce_object_is_identity():
    value = {"anything": [1, 2]}
    assert Field("v", object).coerce(value) is value


def test_schema_rejects_duplicate_names():
    with pytest.raises(SchemaError):
        Schema([Field("a"), Field("a")])


def test_schema_lookup_and_contains():
    schema = Schema([Field("a"), Field("b")])
    assert "a" in schema
    assert schema["a"].name == "a"
    with pytest.raises(SchemaError):
        schema["missing"]


def test_schema_union_keeps_order_and_dedupes():
    left = Schema([Field("a"), Field("b")])
    right = Schema([Field("b"), Field("c")])
    union = left.union(right)
    assert union.field_names() == ["a", "b", "c"]


def test_schema_project():
    schema = Schema([Field("a"), Field("b"), Field("c")])
    assert schema.project(["c", "a"]).field_names() == ["c", "a"]


def test_schema_validate_reports_problems():
    schema = Schema([Field("a", int), Field("b", str)])
    record = DataRecord({"a": "not-int"})
    problems = schema.validate(record)
    assert any("missing field 'b'" in problem for problem in problems)
    assert any("expected int" in problem for problem in problems)


def test_schema_validate_clean_record():
    schema = Schema([Field("a", int)])
    assert schema.validate(DataRecord({"a": 5})) == []


def test_builtin_schemas_shape():
    assert "contents" in TEXT_FILE_SCHEMA
    assert EMAIL_SCHEMA.field_names() == ["filename", "sender", "subject", "body"]
