"""Tests for deterministic seeding."""

from hypothesis import given
from hypothesis import strategies as st

from repro.utils.seeding import SeededRng, derive_seed


def test_derive_seed_deterministic():
    assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)


def test_derive_seed_namespaced():
    assert derive_seed(42, "a") != derive_seed(42, "b")
    assert derive_seed(42, "a") != derive_seed(43, "a")


def test_child_streams_are_independent():
    rng = SeededRng(1)
    a1 = rng.child("a").random()
    # Drawing from a sibling stream must not perturb stream "a".
    rng.child("b").random()
    a2 = SeededRng(1).child("a").random()
    assert a1 == a2


def test_same_seed_same_sequence():
    rng1, rng2 = SeededRng(5), SeededRng(5)
    assert [rng1.random() for _ in range(10)] == [rng2.random() for _ in range(10)]


def test_shuffle_is_deterministic():
    items1 = list(range(20))
    items2 = list(range(20))
    SeededRng(9).shuffle(items1)
    SeededRng(9).shuffle(items2)
    assert items1 == items2
    assert items1 != list(range(20))


def test_sample_without_replacement():
    sample = SeededRng(3).sample(range(100), 10)
    assert len(sample) == len(set(sample)) == 10


def test_chance_extremes():
    rng = SeededRng(0)
    assert not any(rng.chance(0.0) for _ in range(50))
    assert all(rng.chance(1.0) for _ in range(50))


@given(st.integers(min_value=0, max_value=2**31), st.text(max_size=20))
def test_derive_seed_in_range(root, path):
    seed = derive_seed(root, path)
    assert 0 <= seed < 2**63


def test_uniform_within_bounds():
    rng = SeededRng(7)
    for _ in range(100):
        value = rng.uniform(2.0, 3.0)
        assert 2.0 <= value <= 3.0


def test_randint_within_bounds():
    rng = SeededRng(7)
    for _ in range(100):
        assert 1 <= rng.randint(1, 6) <= 6
