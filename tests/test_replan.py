"""Adaptive mid-query re-planning: statistics keys, triggers, bit-identity.

The contract under test: a replan may change *which order* commuting
filters run in mid-flight — never the records, their order, or their
uids — and only fires when learned priors say the reorder is strictly
cheaper.  A cold statistics store must behave exactly as if re-planning
were disabled.
"""

from __future__ import annotations

import pytest

from repro.data.datasets.base import DatasetBundle
from repro.data.corpus import FileCorpus
from repro.data.records import DataRecord, reset_uid_counter
from repro.data.schemas import Field, Schema
from repro.errors import ConfigurationError
from repro.llm.oracle import DIFFICULTY_PREFIX, IntentRegistry
from repro.llm.simulated import SimulatedLLM
from repro.llm.oracle import SemanticOracle
from repro.obs import StatisticsStore, Tracer, validate_spans
from repro.sem import logical as L
from repro.sem.config import QueryProcessorConfig
from repro.sem.dataset import Dataset
from repro.sem.optimizer.replan import plan_fingerprint, stats_key, stats_token

# ---------------------------------------------------------------------------
# Inline corpus: one common filter (~0.9 selectivity), one rare (~0.12),
# one numeric extraction — low difficulty so outcomes are near-exact.
# ---------------------------------------------------------------------------

COMMON = "The order was confirmed by the warehouse."
RARE = "The package was reported damaged."
AMOUNT = "Extract the declared value in dollars."

_INTENTS = {
    "rp.flag_common": (("order", "confirmed", "warehouse"), COMMON),
    "rp.flag_rare": (("package", "reported", "damaged"), RARE),
    "rp.amount": (("declared", "value", "dollars"), AMOUNT),
}


def build_replan_corpus(seed: int = 7, n: int = 24) -> DatasetBundle:
    registry = IntentRegistry()
    for key, (keywords, description) in _INTENTS.items():
        registry.register(key, keywords, description)
    records = []
    for index in range(n):
        common = index % 10 != 0  # ~90% pass
        rare = index % 8 == 0  # ~12% pass
        amount = round(25.0 + 3.0 * index, 2)
        annotations = {
            "rp.flag_common": common,
            "rp.flag_rare": rare,
            "rp.amount": amount,
        }
        for intent in list(annotations):
            annotations[DIFFICULTY_PREFIX + intent] = 0.05
        records.append(
            DataRecord(
                fields={
                    "title": f"parcel-{index}",
                    "body": (
                        f"Parcel {index}: declared value ${amount:.2f}, "
                        f"priority routing slip attached."
                    ),
                    "priority": 1 + index % 3,
                },
                uid=f"rp-{index:04d}",
                annotations=annotations,
                source_id=f"rp-corpus-{seed}",
            )
        )
    schema = Schema(
        [
            Field("title", str, "parcel label"),
            Field("body", str, "full manifest text"),
            Field("priority", int, "routing priority 1-3"),
        ],
        name="Parcel",
        desc="synthetic parcel manifests for replan tests",
    )
    return DatasetBundle(
        name=f"rp-corpus-{seed}",
        corpus=FileCorpus(name=f"rp-corpus-{seed}"),
        schema=schema,
        registry=registry,
        description="Parcel manifests with one common and one rare flag.",
        record_list=records,
    )


@pytest.fixture(scope="module")
def rp_bundle():
    return build_replan_corpus()


def _config(bundle, *, seed: int = 7, tracer=None, **kwargs) -> QueryProcessorConfig:
    llm = SimulatedLLM(
        oracle=SemanticOracle(bundle.registry),
        seed=seed,
        tracer=tracer if tracer is not None else None,
    )
    defaults = dict(pipeline=False, optimize=False)
    defaults.update(kwargs)
    return QueryProcessorConfig(llm=llm, seed=seed, **defaults)


def _misestimate_plan(bundle):
    """where() collapses into a SqlScan whose static estimate halves the
    cardinality — every record passes, so divergence is a free 2.0x."""
    return (
        Dataset.from_source(bundle.source())
        .where("priority >= 1")
        .sem_filter(COMMON)
        .sem_filter(RARE)
        .sem_map(Field("declared_value", float, "declared value"), AMOUNT)
    )


def _plain_plan(bundle):
    return (
        Dataset.from_source(bundle.source())
        .sem_filter(COMMON)
        .sem_filter(RARE)
        .sem_map(Field("declared_value", float, "declared value"), AMOUNT)
    )


def _normalized(result):
    return [(r.uid, tuple(sorted(r.fields.items()))) for r in result.records]


def _warm_store(bundle, plan_fn=_misestimate_plan, **store_kwargs) -> StatisticsStore:
    """One full run with ingestion on — the priors later queries consult."""
    store = StatisticsStore(**store_kwargs)
    reset_uid_counter()
    plan_fn(bundle).run(_config(bundle, stats_store=store))
    assert len(store) > 0
    return store


def _run(bundle, plan_fn, **kwargs):
    reset_uid_counter()
    config = _config(bundle, **kwargs)
    return plan_fn(bundle).run_with_report(config)


# ---------------------------------------------------------------------------
# Statistics keys
# ---------------------------------------------------------------------------


class TestStatsKeys:
    def test_semantically_identical_filters_share_a_key(self):
        a = L.SemFilterOp(child=None, instruction=COMMON)
        b = L.SemFilterOp(child=None, instruction=COMMON)
        assert stats_key(a, "m", "d", "", 7) == stats_key(b, "m", "d", "", 7)

    def test_key_varies_with_model_dataset_scope_and_seed(self):
        op = L.SemFilterOp(child=None, instruction=COMMON)
        base = stats_key(op, "m", "d", "", 7)
        assert stats_key(op, "m2", "d", "", 7) != base
        assert stats_key(op, "m", "d2", "", 7) != base
        assert stats_key(op, "m", "d", "tenant-a", 7) != base
        assert stats_key(op, "m", "d", "", 8) != base

    def test_missing_dataset_is_unkeyable(self):
        op = L.SemFilterOp(child=None, instruction=COMMON)
        assert stats_key(op, "m", "", "", 7) is None

    def test_undescribed_python_filter_is_unkeyable(self):
        op = L.PyFilterOp(child=None, fn=lambda r: True, description="")
        assert stats_token(op, None) is None

    def test_plan_fingerprint_tracks_order(self):
        a = L.SemFilterOp(child=None, instruction=COMMON)
        b = L.SemFilterOp(child=None, instruction=RARE)
        assert plan_fingerprint([a, b], ["m", "m"]) != plan_fingerprint(
            [b, a], ["m", "m"]
        )


# ---------------------------------------------------------------------------
# Estimate sources (prior vs sampled vs static)
# ---------------------------------------------------------------------------


class TestEstimateSources:
    def test_cold_store_estimates_are_static(self, rp_bundle):
        _result, report = _run(
            rp_bundle, _misestimate_plan, stats_store=StatisticsStore()
        )
        assert set(report.est_sources) == {"static"}

    def test_warm_store_estimates_come_from_priors(self, rp_bundle):
        store = _warm_store(rp_bundle)
        _result, report = _run(rp_bundle, _misestimate_plan, stats_store=store)
        assert "prior" in report.est_sources

    def test_stats_estimates_off_keeps_static_sources(self, rp_bundle):
        store = _warm_store(rp_bundle)
        _result, report = _run(
            rp_bundle,
            _misestimate_plan,
            stats_store=store,
            stats_estimates=False,
        )
        assert "prior" not in report.est_sources


# ---------------------------------------------------------------------------
# The replan trigger
# ---------------------------------------------------------------------------


class TestReplanTrigger:
    def test_cold_store_never_replans(self, rp_bundle):
        baseline, _ = _run(rp_bundle, _misestimate_plan)
        cold, report = _run(
            rp_bundle,
            _misestimate_plan,
            stats_store=StatisticsStore(),
            replan=True,
        )
        assert report.replans == []
        assert _normalized(cold) == _normalized(baseline)

    def test_misestimate_with_warm_store_replans_once(self, rp_bundle):
        store = _warm_store(rp_bundle)
        _result, report = _run(
            rp_bundle,
            _misestimate_plan,
            stats_store=store,
            stats_estimates=False,
            replan=True,
        )
        assert len(report.replans) == 1
        decision = report.replans[0]
        assert "cardinality divergence" in decision["cause"]
        assert decision["before_plan"] != decision["after_plan"]
        assert decision["est_cost_after_usd"] < decision["est_cost_before_usd"]
        # The rare filter moves ahead of the common one.
        assert decision["after_order"][0] != decision["before_order"][0]

    def test_replanned_records_are_bit_identical(self, rp_bundle):
        store = _warm_store(rp_bundle)
        baseline, _ = _run(rp_bundle, _misestimate_plan)
        replanned, report = _run(
            rp_bundle,
            _misestimate_plan,
            stats_store=store,
            stats_estimates=False,
            replan=True,
        )
        assert len(report.replans) == 1
        assert _normalized(replanned) == _normalized(baseline)

    def test_replan_respects_the_limit(self, rp_bundle):
        store = _warm_store(rp_bundle)
        _result, report = _run(
            rp_bundle,
            _misestimate_plan,
            stats_store=store,
            stats_estimates=False,
            replan=True,
            replan_limit=0,  # unlimited
        )
        # One reorder exhausts the improvement; later boundaries find
        # nothing cheaper, so even "unlimited" stays at one.
        assert len(report.replans) == 1

    def test_min_rows_floor_suppresses_replanning(self, rp_bundle):
        store = _warm_store(rp_bundle)
        _result, report = _run(
            rp_bundle,
            _misestimate_plan,
            stats_store=store,
            stats_estimates=False,
            replan=True,
            replan_min_rows=1000,
        )
        assert report.replans == []

    def test_accurate_estimates_do_not_trigger(self, rp_bundle):
        store = _warm_store(rp_bundle, plan_fn=_plain_plan)
        _result, report = _run(
            rp_bundle,
            _plain_plan,
            stats_store=store,
            replan=True,
        )
        assert "prior" in report.est_sources
        assert report.replans == []

    def test_high_threshold_suppresses_replanning(self, rp_bundle):
        store = _warm_store(rp_bundle)
        _result, report = _run(
            rp_bundle,
            _misestimate_plan,
            stats_store=store,
            stats_estimates=False,
            replan=True,
            replan_threshold=10.0,
        )
        assert report.replans == []

    def test_report_views_stay_chain_aligned_after_replan(self, rp_bundle):
        store = _warm_store(rp_bundle)
        result, report = _run(
            rp_bundle,
            _misestimate_plan,
            stats_store=store,
            stats_estimates=False,
            replan=True,
        )
        n = len(report.final_chain)
        assert len(result.operator_stats) == n
        assert len(report.stats_plan) == n
        assert len(report.est_rows) == n
        assert len(report.est_sources) == n
        # Executed labels match the replanned chain, position for position.
        for stats, op in zip(result.operator_stats, report.final_chain):
            assert stats.label.split(" [")[0] == op.label()


# ---------------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------------


class TestDeterminism:
    def test_same_seed_and_store_replan_identically_twice(
        self, rp_bundle, tmp_path
    ):
        path = tmp_path / "stats.json"
        _warm_store(rp_bundle).save(path)

        outcomes = []
        for _ in range(2):
            store = StatisticsStore()
            store.load(path)
            result, report = _run(
                rp_bundle,
                _misestimate_plan,
                stats_store=store,
                stats_estimates=False,
                replan=True,
            )
            outcomes.append((_normalized(result), report.replans))
        assert outcomes[0] == outcomes[1]


# ---------------------------------------------------------------------------
# Observability of the decision
# ---------------------------------------------------------------------------


class TestReplanObservability:
    def test_replan_span_is_emitted_and_trace_validates(self, rp_bundle):
        store = _warm_store(rp_bundle)
        tracer = Tracer()
        reset_uid_counter()
        config = _config(
            rp_bundle,
            tracer=tracer,
            stats_store=store,
            stats_estimates=False,
            replan=True,
        )
        _result, report = _misestimate_plan(rp_bundle).run_with_report(config)
        assert len(report.replans) == 1
        validate_spans(tracer.spans)  # must not raise

        spans = tracer.by_kind("replan")
        assert len(spans) == 1
        attrs = spans[0].attributes
        assert attrs["cause"] == report.replans[0]["cause"]
        assert attrs["before_plan"] == report.replans[0]["before_plan"]
        assert attrs["after_plan"] == report.replans[0]["after_plan"]
        ingests = tracer.by_kind("stats.ingest")
        assert len(ingests) == 1  # the run fed its own measurements back

    def test_explain_analyze_shows_sources_drift_and_replan(self, rp_bundle):
        store = _warm_store(rp_bundle)
        reset_uid_counter()
        config = _config(
            rp_bundle,
            stats_store=store,
            stats_estimates=False,
            replan=True,
        )
        text = _misestimate_plan(rp_bundle).explain(analyze=True, config=config)
        assert "Est src" in text
        assert "Drift" in text
        assert "replan: at boundary" in text
        assert "cardinality divergence" in text

    def test_explain_analyze_shows_prior_sources(self, rp_bundle):
        store = _warm_store(rp_bundle)
        reset_uid_counter()
        config = _config(rp_bundle, stats_store=store)
        text = _misestimate_plan(rp_bundle).explain(analyze=True, config=config)
        assert "prior" in text

    def test_replan_metrics_counters(self, rp_bundle):
        from repro.obs import MetricsRegistry

        store = _warm_store(rp_bundle)
        metrics = MetricsRegistry()
        reset_uid_counter()
        llm = SimulatedLLM(
            oracle=SemanticOracle(rp_bundle.registry), seed=7, metrics=metrics
        )
        config = QueryProcessorConfig(
            llm=llm,
            seed=7,
            pipeline=False,
            optimize=False,
            stats_store=store,
            stats_estimates=False,
            replan=True,
        )
        _misestimate_plan(rp_bundle).run(config)
        counters = metrics.snapshot()["counters"]
        assert counters["replan.triggers"] >= 1
        assert counters["replan.reorders"] == 1
        assert counters["stats.lookups"] > 0


# ---------------------------------------------------------------------------
# Config validation
# ---------------------------------------------------------------------------


class TestConfigValidation:
    def test_threshold_must_exceed_one(self, rp_bundle):
        with pytest.raises(ConfigurationError, match="replan_threshold"):
            _config(rp_bundle, replan_threshold=1.0)

    def test_min_rows_must_be_non_negative(self, rp_bundle):
        with pytest.raises(ConfigurationError, match="replan_min_rows"):
            _config(rp_bundle, replan_min_rows=-1)

    def test_limit_must_be_non_negative(self, rp_bundle):
        with pytest.raises(ConfigurationError, match="replan_limit"):
            _config(rp_bundle, replan_limit=-1)


# ---------------------------------------------------------------------------
# Interplay with materialization
# ---------------------------------------------------------------------------


class TestReplanWithMaterialization:
    def test_replanned_run_captures_and_second_run_reuses(self, rp_bundle):
        from repro.sem.materialize import MaterializationStore

        stats = _warm_store(rp_bundle)
        mat = MaterializationStore()

        first, first_report = _run(
            rp_bundle,
            _misestimate_plan,
            stats_store=stats,
            stats_estimates=False,
            replan=True,
            materialization_store=mat,
        )
        assert len(first_report.replans) == 1
        assert first_report.capture is not None
        assert len(mat) > 0

        # Same query again: fingerprint canonicalization makes the
        # replanned capture match the written plan, so the whole prefix
        # replays and the (reuse-incompatible) replanner stays disarmed.
        second, second_report = _run(
            rp_bundle,
            _misestimate_plan,
            stats_store=stats,
            stats_estimates=False,
            replan=True,
            materialization_store=mat,
        )
        assert second_report.reused_prefix > 0
        assert second_report.replans == []
        assert _normalized(second) == _normalized(first)
