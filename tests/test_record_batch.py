"""Columnar RecordBatch and vectorized predicate evaluation.

The contract under test: for every predicate and every record population,
``struct_filter_mask`` keeps exactly the rows row-at-a-time evaluation
keeps — the vectorized fast path and the per-row fallback may differ in
speed, never in answers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.records import DataRecord, reset_uid_counter
from repro.llm.oracle import SemanticOracle
from repro.llm.simulated import SimulatedLLM
from repro.qa.corpus import CorpusSpec, build_corpus, instruction_for
from repro.sem.batch import (
    RecordBatch,
    _exact_float_column,
    struct_filter_mask,
)
from repro.sem.config import QueryProcessorConfig
from repro.sem.dataset import Dataset
from repro.sem.structql import compile_predicate, predicate_holds


def _records(rows: list[dict]) -> list[DataRecord]:
    return [DataRecord(fields=row, uid=f"rb-{index:03d}") for index, row in enumerate(rows)]


MIXED = _records(
    [
        {"priority": 1, "amount": 10.0, "name": "acme", "flag": True},
        {"priority": 4, "amount": 0.5, "name": "globex", "flag": False},
        {"priority": None, "amount": 99.9, "name": None, "flag": None},
        {"amount": 7.0, "name": "stark"},  # priority/flag missing
        {"priority": 3, "amount": None, "name": "acme", "flag": True},
        {"priority": 2, "amount": 2**60, "name": "wayne", "flag": False},
    ]
)


# ---------------------------------------------------------------------------
# Batch structure
# ---------------------------------------------------------------------------


class TestRecordBatch:
    def test_len_and_iter_preserve_order(self):
        batch = RecordBatch(MIXED)
        assert len(batch) == len(MIXED)
        assert list(batch) == MIXED

    def test_column_reads_missing_as_none_and_caches(self):
        batch = RecordBatch(MIXED)
        column = batch.column("priority")
        assert list(column) == [1, 4, None, None, 3, 2]
        assert batch.column("priority") is column

    def test_validity_tracks_presence(self):
        batch = RecordBatch(MIXED)
        assert list(batch.validity("priority")) == [True, True, False, False, True, True]
        assert list(batch.validity("amount")) == [True, True, True, True, False, True]

    def test_take_shares_record_objects(self):
        batch = RecordBatch(MIXED)
        mask = np.array([True, False, True, False, False, False])
        kept = batch.take(mask)
        assert kept.records == [MIXED[0], MIXED[2]]
        assert kept.records[0] is MIXED[0]


# ---------------------------------------------------------------------------
# Vectorized predicates agree with row-at-a-time evaluation
# ---------------------------------------------------------------------------

PREDICATES = [
    "priority >= 2",
    "priority = 4",
    "4 = priority",
    "2 < priority",
    "priority <> 1",
    "priority != 1",
    "priority <= 3 AND amount > 1.0",
    "priority = 4 OR amount < 1.0",
    "NOT (priority >= 2)",
    "priority IS NULL",
    "priority IS NOT NULL",
    "priority BETWEEN 2 AND 3",
    "priority NOT BETWEEN 2 AND 3",
    "priority BETWEEN 2 AND NULL",
    "priority IN (1, 3)",
    "priority NOT IN (1, 3)",
    "priority IN (1, NULL)",
    "name = 'acme'",            # string compare: exact scalar loop
    "name < 'globex'",          # string ordering: exact scalar loop
    "name LIKE 'a%'",           # no vector path: per-row fallback
    "flag",                     # bare boolean column
    "amount = 1152921504606846976",  # beyond float64-exact: scalar loop
    "priority = NULL",
    "length(name) > 4",         # scalar function: per-row fallback
    "priority < 3",
    "name <= 'globex'",
    "name >= 'globex'",
    "priority = amount",        # column-to-column: per-row fallback
    "priority + 1 = 2",         # arithmetic leaf: per-row fallback
    "priority + 1 IS NULL",
    "priority + 1 BETWEEN 1 AND 2",
    "priority + 1 IN (1, 2)",
    "name BETWEEN 'a' AND 'z'",  # non-numeric bounds: per-row fallback
]


@pytest.mark.parametrize("condition", PREDICATES)
def test_mask_matches_row_semantics(condition):
    batch = RecordBatch(MIXED)
    mask = struct_filter_mask(compile_predicate(condition), batch)
    expected = [predicate_holds(condition, record.fields) for record in MIXED]
    assert list(mask) == expected, condition


def test_numeric_truthiness_falls_back_to_executor():
    # A bare numeric column is not a boolean TRUE: the executor returns the
    # value itself and WHERE keeps only exact TRUE, so every numeric row
    # drops.  The vector path must defer to the executor, not coerce.
    batch = RecordBatch(MIXED)
    mask = struct_filter_mask(compile_predicate("priority"), batch)
    expected = [predicate_holds("priority", record.fields) for record in MIXED]
    assert list(mask) == expected == [False] * len(MIXED)


class TestExactFloatColumn:
    def test_rejects_bool_literal(self):
        batch = RecordBatch(MIXED)
        column, valid = batch.column("priority"), batch.validity("priority")
        assert _exact_float_column(column, valid, True) is None
        assert _exact_float_column(column, valid, "x") is None

    def test_rejects_huge_int_literal_and_values(self):
        batch = RecordBatch(MIXED)
        column, valid = batch.column("priority"), batch.validity("priority")
        assert _exact_float_column(column, valid, 2**60) is None
        # The "amount" column contains a 2**60 value.
        assert (
            _exact_float_column(batch.column("amount"), batch.validity("amount"), 1)
            is None
        )

    def test_rejects_non_numeric_values(self):
        batch = RecordBatch(MIXED)
        assert (
            _exact_float_column(batch.column("name"), batch.validity("name"), 1)
            is None
        )

    def test_accepts_mixed_int_float_with_nan_nulls(self):
        batch = RecordBatch(MIXED)
        floats = _exact_float_column(
            batch.column("priority"), batch.validity("priority"), 2
        )
        assert floats is not None
        assert floats[0] == 1.0 and np.isnan(floats[2])


# ---------------------------------------------------------------------------
# Columnar engine mode is an invisible fast path
# ---------------------------------------------------------------------------


def _run_qa_plan(columnar: bool):
    reset_uid_counter()
    bundle = build_corpus(CorpusSpec(seed=9, n_records=20))
    llm = SimulatedLLM(oracle=SemanticOracle(bundle.registry), seed=9)
    config = QueryProcessorConfig(
        llm=llm, optimize=False, seed=9, columnar=columnar
    )
    result = (
        Dataset.from_source(bundle.source())
        .where("priority >= 2")
        .sem_filter(instruction_for("qa.flag_urgent"))
        .filter(lambda r: r.get("priority", 0) <= 3, description="le3")
        .limit(5)
        .run(config)
    )
    return [(r.uid, tuple(sorted(r.fields.items()))) for r in result.records], (
        result.total_cost_usd,
        result.total_time_s,
    )


def test_columnar_escape_hatch_is_bit_identical():
    columnar_records, columnar_totals = _run_qa_plan(columnar=True)
    row_records, row_totals = _run_qa_plan(columnar=False)
    assert columnar_records == row_records
    assert columnar_totals == row_totals


# ---------------------------------------------------------------------------
# Vectorized project / py_map: bit-identical to row-mode derive
# ---------------------------------------------------------------------------


def _mixed_shape_records():
    """Records with two distinct field shapes (exercises the shape cache)."""
    records = []
    for i in range(6):
        fields = {"a": i, "b": f"s{i}", "c": float(i)}
        if i % 2:
            fields["extra"] = i * 10
        record = DataRecord(fields, uid=f"r{i}")
        record.annotations["tag"] = i
        record.source_id = "mixed"
        records.append(record)
    return records


def _identical(left: DataRecord, right: DataRecord) -> bool:
    return (
        left.uid == right.uid
        and left.fields == right.fields
        and left.annotations == right.annotations
        and left.source_id == right.source_id
        and left.parent_uids == right.parent_uids
    )


def test_project_batch_matches_row_mode_derive():
    from repro.sem.batch import project_batch

    records = _mixed_shape_records()
    fields = ["a", "c"]
    out = project_batch(RecordBatch(records), fields)
    wanted = set(fields)
    for record, got in zip(records, out.records):
        drop = [name for name in record.fields if name not in wanted]
        expected = record.derive({}, drop=drop)
        assert _identical(expected, got)


def test_project_batch_shares_projected_columns():
    from repro.sem.batch import project_batch

    batch = RecordBatch(_mixed_shape_records())
    batch.column("a")  # warm the input cache
    out = project_batch(batch, ["a", "b"])
    # Projection never rewrites values: columns are shared, not copied.
    assert out._columns["a"] is batch._columns["a"]
    assert out._validity["b"] is batch._validity["b"]
    assert list(out.column("a")) == [r.fields["a"] for r in out.records]


def test_py_map_batch_matches_row_mode_derive():
    from repro.sem.batch import py_map_batch

    def fn(record):
        new = {"doubled": record.fields["a"] * 2}
        if "extra" in record.fields:
            new["b"] = "overwritten"  # touch an existing field too
        return new

    records = _mixed_shape_records()
    out = py_map_batch(RecordBatch(records), fn)
    for record, got in zip(records, out.records):
        expected = record.derive(fn(record))
        assert _identical(expected, got)


def test_py_map_batch_pre_seeded_columns_match_lazy():
    from repro.sem.batch import py_map_batch

    def fn(record):
        return {"doubled": record.fields["a"] * 2}

    batch = RecordBatch(_mixed_shape_records())
    batch.column("b")  # warm an untouched input column
    out = py_map_batch(batch, fn)
    # Touched columns were materialized array-at-a-time...
    assert "doubled" in out._columns
    fresh = RecordBatch(list(out.records))
    assert list(out.column("doubled")) == list(fresh.column("doubled"))
    # ...while untouched ones are shared with the input batch's cache.
    assert out._columns["b"] is batch._columns["b"]


def test_py_map_batch_rejects_non_dict_with_row_mode_message():
    from repro.errors import ExecutionError
    from repro.sem.batch import py_map_batch

    with pytest.raises(
        ExecutionError, match="PyMap function must return a dict"
    ):
        py_map_batch(RecordBatch(_mixed_shape_records()), lambda r: 42)
