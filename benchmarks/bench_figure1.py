"""Figure 1: the paper's two worked examples, reproduced as traces.

Left: on the Kramabench query, our prototype iterates between executing
optimized semantic-operator programs and writing Python code to identify
the correct statistics and compute the final ratio.

Right: on the Enron query, an open Deep Research system filters with
simplistic Python and manual validation (low recall), while the prototype
writes one optimized semantic-operator program that processes the entire
dataset (high recall).

This bench regenerates both behaviours and asserts the diagnostic
signatures the figure calls out.
"""

from __future__ import annotations

from conftest import save_report

from repro.agents.codeagent import CodeAgent
from repro.agents.filetools import build_file_tools
from repro.agents.policies.deep_research import EnronCodeAgentPolicy
from repro.bench.metrics import set_metrics
from repro.core.runtime import AnalyticsRuntime
from repro.data.datasets import enron as en
from repro.data.datasets import kramabench as kb
from repro.llm.oracle import SemanticOracle
from repro.llm.simulated import SimulatedLLM

SEED = 424242


def _figure1_left(legal_bundle) -> tuple[str, dict]:
    runtime = AnalyticsRuntime.for_bundle(legal_bundle, seed=SEED)
    context = runtime.make_context(legal_bundle)
    result = runtime.compute(context, kb.QUERY_RATIO)
    trace_text = result.agent.trace.render()
    raw_code = "\n".join(step.code for step in result.agent.trace.steps)
    truth = legal_bundle.ground_truth["ratio"]
    ratio = (result.answer or {}).get("ratio")
    facts = {
        "uses_program_tool": "run_semantic_program(" in raw_code,
        "uses_python_crosscheck": "final_answer" in raw_code and "corroboration" in raw_code,
        "pct_err": abs(ratio - truth) / truth * 100 if ratio else 100.0,
        "source": (result.answer or {}).get("source"),
    }
    return trace_text, facts


def _figure1_right(enron_bundle) -> tuple[str, dict]:
    gold = enron_bundle.ground_truth["relevant_filenames"]
    llm = SimulatedLLM(oracle=SemanticOracle(enron_bundle.registry), seed=SEED)
    agent = CodeAgent(
        llm, build_file_tools(enron_bundle.corpus), EnronCodeAgentPolicy(), seed=SEED
    )
    baseline = agent.run(en.QUERY_RELEVANT)
    baseline_metrics = set_metrics(gold, baseline.answer or [])
    trace_text = baseline.trace.render()

    runtime = AnalyticsRuntime.for_bundle(enron_bundle, seed=SEED)
    context = runtime.make_context(enron_bundle)
    compute_result = runtime.compute(context, en.QUERY_RELEVANT)
    returned = [row.get("filename") for row in (compute_result.answer or [])]
    compute_metrics = set_metrics(gold, returned)

    facts = {
        "baseline_greps": "re.compile" in trace_text,
        "baseline_recall": baseline_metrics.recall,
        "baseline_precision": baseline_metrics.precision,
        "compute_recall": compute_metrics.recall,
        "compute_precision": compute_metrics.precision,
    }
    report = (
        "Figure 1 (right) — open Deep Research trace:\n" + trace_text +
        f"\n\nbaseline: P={baseline_metrics.precision:.3f} R={baseline_metrics.recall:.3f}"
        f"\ncompute:  P={compute_metrics.precision:.3f} R={compute_metrics.recall:.3f}"
    )
    return report, facts


def bench_figure1(benchmark, legal_bundle, enron_bundle, results_dir):
    def run_both():
        return _figure1_left(legal_bundle), _figure1_right(enron_bundle)

    (left_trace, left), (right_report, right) = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    save_report(
        results_dir,
        "figure1",
        "Figure 1 (left) — compute operator trace:\n" + left_trace + "\n\n" + right_report,
    )
    benchmark.extra_info["measured"] = {"left": {k: v for k, v in left.items() if k != "source"},
                                        "right": right}

    # Left: compute mixes optimized programs with Python post-processing.
    assert left["uses_program_tool"]
    assert left["uses_python_crosscheck"]
    assert left["pct_err"] < 2.0

    # Right: the Deep-Research baseline greps and under-reads; compute's
    # program reads everything.
    assert right["baseline_greps"]
    assert right["baseline_recall"] < 0.6
    assert right["baseline_precision"] > 0.7
    assert right["compute_recall"] > 0.9
