"""Table 1: Kramabench ``legal-easy-3`` — Pct. Err. / Cost / Time.

Paper numbers (3-trial averages):

    | System     | Pct. Err. | Cost ($) | Time (s) |
    | Sem. Ops   | 17.00%    | 1.66     | 215.2    |
    | CodeAgent  | 27.56%    | 0.03     | 77.0     |
    | PZ compute | 0.02%     | 1.17     | 583.0    |

We reproduce the *shape*: the handcrafted semantic-operator program lands
in the tens-of-percent error band (errant second ratios), the naive
CodeAgent is cheapest/fastest but worst, and ``compute`` is near-exact at
a cost between the two, paying extra wall-clock for its agent iterations.
"""

from __future__ import annotations

from conftest import save_report

from repro.bench.harness import render_report, run_trials
from repro.bench.systems import (
    kramabench_codeagent_system,
    kramabench_compute_system,
    kramabench_semops_system,
)

N_TRIALS = 3
BASE_SEED = 20260706

PAPER_ROWS = {
    "Sem. Ops": ["17.00%", "1.66", "215.2"],
    "CodeAgent": ["27.56%", "0.03", "77.0"],
    "PZ compute": ["0.02%", "1.17", "583.0"],
}


def _run_all(legal_bundle):
    return [
        run_trials("Sem. Ops", kramabench_semops_system(legal_bundle), N_TRIALS, BASE_SEED),
        run_trials("CodeAgent", kramabench_codeagent_system(legal_bundle), N_TRIALS, BASE_SEED),
        run_trials("PZ compute", kramabench_compute_system(legal_bundle), N_TRIALS, BASE_SEED),
    ]


def bench_table1(benchmark, legal_bundle, results_dir):
    summaries = benchmark.pedantic(
        _run_all, args=(legal_bundle,), rounds=1, iterations=1
    )
    report = render_report(
        "Table 1: Kramabench legal-easy-3 (avg of 3 trials)",
        summaries,
        metric_columns=[("Pct. Err.", "pct_err", lambda v: f"{v:.2f}%")],
        paper_rows=PAPER_ROWS,
    )
    save_report(results_dir, "table1", report)

    semops, codeagent, compute_op = summaries
    benchmark.extra_info["measured"] = {
        s.name: {"pct_err": s.quality["pct_err"], "cost": s.cost_usd, "time": s.time_s}
        for s in summaries
    }

    # Shape assertions (who wins, and by what kind of margin).
    assert compute_op.quality["pct_err"] < 2.0, "compute should be near-exact"
    assert compute_op.quality["pct_err"] < semops.quality["pct_err"]
    assert semops.quality["pct_err"] < codeagent.quality["pct_err"]
    assert codeagent.cost_usd < 0.25 * semops.cost_usd, "CodeAgent must be far cheaper"
    assert codeagent.time_s < semops.time_s < compute_op.time_s
