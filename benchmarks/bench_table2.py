"""Table 2: Enron email filter — F1 / Recall / Precision / Cost / Time.

Paper numbers (3-trial averages):

    | System     | F1     | Recall | Prec.  | Cost ($) | Time (s) |
    | CodeAgent  | 50.53% | 46.15% | 88.89% | 0.08     | 37.0     |
    | CodeAgent+ | 98.67% | 97.44% | 100%   | 3.76     | 1,999.9  |
    | PZ compute | 98.67% | 97.44% | 100%   | 0.87     | 546.2    |

Headline claims reproduced as *shape*: compute beats the naive CodeAgent's
F1 by ~1.9x, and matches CodeAgent+'s quality while saving the bulk of its
cost (paper: 76.8%) and runtime (paper: 72.7%) through optimized execution
(filter pushdown and model selection instead of repeated full scans).
"""

from __future__ import annotations

from conftest import save_report

from repro.bench.harness import render_report, run_trials
from repro.bench.systems import (
    enron_codeagent_plus_system,
    enron_codeagent_system,
    enron_compute_system,
)

N_TRIALS = 3
BASE_SEED = 20260707

PAPER_ROWS = {
    "CodeAgent": ["50.53%", "46.15%", "88.89%", "0.08", "37.0"],
    "CodeAgent+": ["98.67%", "97.44%", "100.00%", "3.76", "1999.9"],
    "PZ compute": ["98.67%", "97.44%", "100.00%", "0.87", "546.2"],
}

METRIC_COLUMNS = [
    ("F1", "f1", lambda v: f"{v * 100:.2f}%"),
    ("Recall", "recall", lambda v: f"{v * 100:.2f}%"),
    ("Prec.", "precision", lambda v: f"{v * 100:.2f}%"),
]


def _run_all(enron_bundle):
    return [
        run_trials("CodeAgent", enron_codeagent_system(enron_bundle), N_TRIALS, BASE_SEED),
        run_trials("CodeAgent+", enron_codeagent_plus_system(enron_bundle), N_TRIALS, BASE_SEED),
        run_trials("PZ compute", enron_compute_system(enron_bundle), N_TRIALS, BASE_SEED),
    ]


def bench_table2(benchmark, enron_bundle, results_dir):
    summaries = benchmark.pedantic(
        _run_all, args=(enron_bundle,), rounds=1, iterations=1
    )
    report = render_report(
        "Table 2: Enron firsthand-transaction filter (avg of 3 trials)",
        summaries,
        metric_columns=METRIC_COLUMNS,
        paper_rows=PAPER_ROWS,
    )
    cost_saving = 1 - summaries[2].cost_usd / summaries[1].cost_usd
    time_saving = 1 - summaries[2].time_s / summaries[1].time_s
    f1_gain = summaries[2].quality["f1"] / max(1e-9, summaries[0].quality["f1"])
    report += (
        f"\n\ncompute vs CodeAgent+: cost saving {cost_saving * 100:.1f}% "
        f"(paper 76.8%), time saving {time_saving * 100:.1f}% (paper 72.7%)"
        f"\ncompute vs CodeAgent: F1 gain {f1_gain:.2f}x (paper 1.95x)"
    )
    save_report(results_dir, "table2", report)

    codeagent, codeagent_plus, compute_op = summaries
    benchmark.extra_info["measured"] = {
        s.name: {**s.quality, "cost": s.cost_usd, "time": s.time_s} for s in summaries
    }

    # Shape assertions.
    assert compute_op.quality["f1"] > 1.5 * codeagent.quality["f1"]
    assert compute_op.quality["f1"] > 0.90
    assert abs(compute_op.quality["f1"] - codeagent_plus.quality["f1"]) < 0.08
    assert cost_saving > 0.5, "compute must save most of CodeAgent+'s cost"
    assert time_saving > 0.4, "compute must save much of CodeAgent+'s runtime"
    assert codeagent.cost_usd < 0.5 * compute_op.cost_usd
