"""Study: extraction quality per field per model tier.

The Enron query also asks for sender/subject/summary extraction, which the
paper's evaluation simplifies away ("to simplify our evaluation we simply
compute the precision, recall, and F1-score of the emails returned").
This bench measures the part the paper skipped: per-field extraction
accuracy across model tiers on the gold-relevant emails, which is the
signal the optimizer's map-operator model selection trades against cost.
"""

from __future__ import annotations

from conftest import save_report

from repro.data.datasets import enron as en
from repro.llm.models import completion_models_by_cost
from repro.llm.oracle import SemanticOracle
from repro.llm.simulated import SimulatedLLM
from repro.utils.formatting import format_table

SEED = 151515

FIELDS = (
    ("sender", en.MAP_SENDER, en.INTENT_SENDER),
    ("subject", en.MAP_SUBJECT, en.INTENT_SUBJECT),
    ("summary", en.MAP_SUMMARY, en.INTENT_SUMMARY),
)


def _run(bundle, model: str) -> dict:
    gold = set(bundle.ground_truth["relevant_filenames"])
    records = [record for record in bundle.records() if record["filename"] in gold]
    llm = SimulatedLLM(oracle=SemanticOracle(bundle.registry), seed=SEED)
    accuracy = {}
    for field_name, instruction, intent_key in FIELDS:
        correct = 0
        for record in records:
            extraction = llm.extract(instruction, record, model=model)
            if extraction.value == record.annotations[intent_key]:
                correct += 1
        accuracy[field_name] = correct / len(records)
    return {
        "accuracy": accuracy,
        "cost": llm.tracker.total().cost_usd,
    }


def bench_extraction_quality(benchmark, enron_bundle, results_dir):
    models = [card.name for card in completion_models_by_cost()]
    results = benchmark.pedantic(
        lambda: {model: _run(enron_bundle, model) for model in models},
        rounds=1,
        iterations=1,
    )
    rows = [
        [
            model,
            f"{r['accuracy']['sender'] * 100:.1f}%",
            f"{r['accuracy']['subject'] * 100:.1f}%",
            f"{r['accuracy']['summary'] * 100:.1f}%",
            f"{r['cost']:.4f}",
        ]
        for model, r in results.items()
    ]
    report = format_table(
        ["Model", "Sender acc.", "Subject acc.", "Summary acc.", "Cost ($)"],
        rows,
        title="Extraction accuracy on the 39 gold-relevant Enron emails",
    )
    save_report(results_dir, "extraction_quality", report)
    benchmark.extra_info["measured"] = results

    cheap, champion = models[0], models[-1]
    for field_name, _, _ in FIELDS:
        assert (
            results[champion]["accuracy"][field_name]
            >= results[cheap]["accuracy"][field_name]
        )
    # Trivial fields (sender/subject) are near-perfect even on the cheap
    # tier — which is why downgrading maps is usually safe for the
    # optimizer — while free-form summaries separate the tiers.
    assert results[cheap]["accuracy"]["sender"] > 0.95
    assert results[champion]["accuracy"]["summary"] >= 0.9
    assert results[cheap]["cost"] < results[champion]["cost"]