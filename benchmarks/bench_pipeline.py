"""Pipelined vs barrier execution: makespan, cost, and quality per seed.

The pipelined executor fuses adjacent streamable operators into sections
and charges the critical-path makespan of the (batch, stage) grid, so a
record batch can be in the top-k stage while later batches are still being
filtered.  Because the simulated LLM keys every answer on (seed, model,
intent, record), the two modes must produce *bit-identical* records at
identical cost — the entire win is virtual wall-clock time.

This bench runs the acceptance plan (filter -> map -> top-k rerank at
parallelism 8) in both modes across seeds, asserts >= 1.5x speedup with
identical outputs, and emits ``BENCH_pipeline.json`` so future PRs can
track the perf trajectory.

Run standalone for a quick check::

    PYTHONPATH=src python benchmarks/bench_pipeline.py --smoke
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from conftest import RESULTS_DIR, save_report

from repro.data.datasets import enron as en
from repro.data.records import reset_uid_counter
from repro.data.schemas import Field
from repro.llm.oracle import SemanticOracle
from repro.llm.simulated import SimulatedLLM
from repro.sem.config import QueryProcessorConfig
from repro.sem.dataset import Dataset
from repro.utils.formatting import format_table

SEEDS = (0, 1, 2)
PARALLELISM = 8
TOP_K = 10
MIN_SPEEDUP = 1.5
JSON_NAME = "BENCH_pipeline.json"


def _run(bundle, seed: int, pipeline: bool) -> dict:
    # Derived-record uids seed the simulated noise; reset the global
    # counter so both modes replay the identical uid sequence.
    reset_uid_counter()
    llm = SimulatedLLM(oracle=SemanticOracle(bundle.registry), seed=seed)
    config = QueryProcessorConfig(
        llm=llm, optimize=False, parallelism=PARALLELISM, seed=seed, pipeline=pipeline
    )
    result = (
        Dataset.from_source(bundle.source())
        .sem_filter(en.FILTER_MENTIONS)
        .sem_map(Field("summary", str), en.MAP_SUMMARY)
        .sem_topk("most relevant to suspicious deals", k=TOP_K, method="llm")
        .run(config)
    )
    relevant = sum(
        1 for r in result.records if r.annotations.get(en.INTENT_RELEVANT)
    )
    return {
        "time_s": result.total_time_s,
        "cost_usd": result.total_cost_usd,
        "records": [(r.uid, dict(r.fields)) for r in result.records],
        "topk_precision": relevant / max(1, len(result.records)),
    }


def _sweep(bundle, seeds) -> dict:
    """seed -> {barrier, pipelined, speedup, identical}."""
    results = {}
    for seed in seeds:
        barrier = _run(bundle, seed, pipeline=False)
        pipelined = _run(bundle, seed, pipeline=True)
        results[seed] = {
            "barrier": barrier,
            "pipelined": pipelined,
            "speedup": barrier["time_s"] / pipelined["time_s"],
            "identical": barrier["records"] == pipelined["records"],
            "cost_delta_usd": abs(barrier["cost_usd"] - pipelined["cost_usd"]),
        }
    return results


def _render(results) -> str:
    headers = [
        "Seed",
        "Barrier (s)",
        "Pipelined (s)",
        "Speedup",
        "Cost ($)",
        "Top-k prec.",
        "Identical",
    ]
    rows = []
    for seed, entry in sorted(results.items()):
        rows.append(
            [
                str(seed),
                f"{entry['barrier']['time_s']:.1f}",
                f"{entry['pipelined']['time_s']:.1f}",
                f"{entry['speedup']:.2f}x",
                f"{entry['pipelined']['cost_usd']:.3f}",
                f"{entry['pipelined']['topk_precision']:.2f}",
                "yes" if entry["identical"] else "NO",
            ]
        )
    return format_table(
        headers,
        rows,
        title=(
            "Pipelined vs barrier execution "
            f"(filter->map->top-{TOP_K}, parallelism {PARALLELISM})"
        ),
    )


def _check_contract(results) -> None:
    for seed, entry in results.items():
        assert entry["identical"], (
            f"seed {seed}: pipelined records differ from barrier records"
        )
        assert entry["cost_delta_usd"] <= 1e-9, (
            f"seed {seed}: cost diverged by {entry['cost_delta_usd']:.2e}"
        )
        assert entry["speedup"] >= MIN_SPEEDUP, (
            f"seed {seed}: speedup {entry['speedup']:.2f}x "
            f"below the {MIN_SPEEDUP}x floor"
        )


def _save_json(results_dir: Path, results) -> None:
    payload = {
        "plan": f"enron filter->map->top-{TOP_K} (llm rerank)",
        "parallelism": PARALLELISM,
        "min_speedup": MIN_SPEEDUP,
        "seeds": {
            str(seed): {
                "barrier": {
                    "time_s": entry["barrier"]["time_s"],
                    "cost_usd": entry["barrier"]["cost_usd"],
                    "topk_precision": entry["barrier"]["topk_precision"],
                },
                "pipelined": {
                    "time_s": entry["pipelined"]["time_s"],
                    "cost_usd": entry["pipelined"]["cost_usd"],
                    "topk_precision": entry["pipelined"]["topk_precision"],
                },
                "speedup": entry["speedup"],
                "identical_records": entry["identical"],
            }
            for seed, entry in results.items()
        },
    }
    path = results_dir / JSON_NAME
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {path}")


def bench_pipeline(benchmark, enron_bundle, results_dir):
    results = benchmark.pedantic(
        _sweep, args=(enron_bundle, SEEDS), rounds=1, iterations=1
    )
    report = _render(results)
    save_report(results_dir, "pipeline", report)
    _save_json(results_dir, results)
    benchmark.extra_info["measured"] = {
        str(seed): {
            "speedup": entry["speedup"],
            "barrier_s": entry["barrier"]["time_s"],
            "pipelined_s": entry["pipelined"]["time_s"],
        }
        for seed, entry in results.items()
    }
    _check_contract(results)


def main(argv: list[str]) -> int:
    unknown = [arg for arg in argv if arg != "--smoke"]
    if unknown:
        print(f"usage: bench_pipeline.py [--smoke]  (unknown: {unknown})")
        return 2
    smoke = "--smoke" in argv
    from repro.data.datasets import generate_enron_corpus

    bundle = generate_enron_corpus()
    seeds = SEEDS[:1] if smoke else SEEDS
    results = _sweep(bundle, seeds)
    print(_render(results))
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    _save_json(RESULTS_DIR, results)
    _check_contract(results)
    worst = min(entry["speedup"] for entry in results.values())
    print(
        f"\npipelined execution is >= {worst:.2f}x faster than the barrier "
        f"escape hatch with bit-identical records and cost — contract holds"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
