"""Adaptive mid-query re-planning vs a static plan under misestimates.

The statistics store closes the runtime's feedback loop: executed queries
feed per-operator priors (selectivity, cost, latency) that later queries
consult, and when observed cardinality diverges from the plan estimate
past a threshold, the engine re-orders the remaining commuting filters by
learned rank mid-flight.  The rewrite is bit-identity safe — filters
commute — so the win is pure cost/latency.

Three scenarios per seed over a parcel-manifest corpus whose written plan
runs a ~90%-selective filter before a ~12%-selective one:

- ``misestimate``: a pushed-down WHERE keeps every record while the
  static estimate halves it — a free 2x divergence trigger.  With a
  warmed store the re-planner flips the filters; contract: >= 1.3x cost
  reduction, records bit-identical to the static plan, exactly one
  validated ``replan`` span with cause + before/after plan fingerprints.
- ``cold``: same query, empty store — the re-planner must do nothing.
- ``accurate``: prior-fed estimates match observation — no trigger.

Run standalone for a quick check::

    PYTHONPATH=src python benchmarks/bench_replan.py --smoke
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from conftest import RESULTS_DIR, save_report

from repro.data.corpus import FileCorpus
from repro.data.datasets.base import DatasetBundle
from repro.data.records import DataRecord, reset_uid_counter
from repro.data.schemas import Field, Schema
from repro.llm.oracle import DIFFICULTY_PREFIX, IntentRegistry, SemanticOracle
from repro.llm.simulated import SimulatedLLM
from repro.obs import StatisticsStore, Tracer, validate_spans
from repro.sem.config import QueryProcessorConfig
from repro.sem.dataset import Dataset
from repro.utils.formatting import format_table

SEEDS = (0, 1, 2)
N_RECORDS = 60
MIN_COST_RATIO = 1.3
JSON_NAME = "BENCH_replan.json"

COMMON = "The order was confirmed by the warehouse."
RARE = "The package was reported damaged."
AMOUNT = "Extract the declared value in dollars."

_INTENTS = {
    "rp.flag_common": (("order", "confirmed", "warehouse"), COMMON),
    "rp.flag_rare": (("package", "reported", "damaged"), RARE),
    "rp.amount": (("declared", "value", "dollars"), AMOUNT),
}


def build_replan_corpus(seed: int, n: int = N_RECORDS) -> DatasetBundle:
    """Parcel manifests: ~90% pass the common flag, ~12% the rare one."""
    registry = IntentRegistry()
    for key, (keywords, description) in _INTENTS.items():
        registry.register(key, keywords, description)
    records = []
    for index in range(n):
        amount = round(25.0 + 3.0 * index, 2)
        annotations = {
            "rp.flag_common": index % 10 != 0,
            "rp.flag_rare": index % 8 == 0,
            "rp.amount": amount,
        }
        for intent in list(annotations):
            annotations[DIFFICULTY_PREFIX + intent] = 0.05
        records.append(
            DataRecord(
                fields={
                    "title": f"parcel-{index}",
                    "body": (
                        f"Parcel {index}: declared value ${amount:.2f}, "
                        f"priority routing slip attached."
                    ),
                    "priority": 1 + index % 3,
                },
                uid=f"rp-{index:04d}",
                annotations=annotations,
                source_id=f"rp-corpus-{seed}",
            )
        )
    schema = Schema(
        [
            Field("title", str, "parcel label"),
            Field("body", str, "full manifest text"),
            Field("priority", int, "routing priority 1-3"),
        ],
        name="Parcel",
        desc="synthetic parcel manifests for the replan bench",
    )
    return DatasetBundle(
        name=f"rp-corpus-{seed}",
        corpus=FileCorpus(name=f"rp-corpus-{seed}"),
        schema=schema,
        registry=registry,
        description="Parcel manifests with one common and one rare flag.",
        record_list=records,
    )


def _misestimate_plan(bundle):
    # The WHERE keeps every record (priority is always >= 1) but the
    # pushed SqlScan's static estimate halves the cardinality: observed
    # vs estimated rows diverge 2x at the first boundary for free.
    return (
        Dataset.from_source(bundle.source())
        .where("priority >= 1")
        .sem_filter(COMMON)
        .sem_filter(RARE)
        .sem_map(Field("declared_value", float, "declared value"), AMOUNT)
    )


def _plain_plan(bundle):
    return (
        Dataset.from_source(bundle.source())
        .sem_filter(COMMON)
        .sem_filter(RARE)
        .sem_map(Field("declared_value", float, "declared value"), AMOUNT)
    )


def _run(bundle, seed: int, plan_fn, *, store=None, tracer=None, **kwargs):
    # Fresh LLM (fresh generation cache) per variant, and the derived-uid
    # counter reset so every variant replays the identical uid sequence.
    reset_uid_counter()
    llm = SimulatedLLM(
        oracle=SemanticOracle(bundle.registry), seed=seed, tracer=tracer
    )
    config = QueryProcessorConfig(
        llm=llm,
        seed=seed,
        optimize=False,
        pipeline=False,
        stats_store=store,
        **kwargs,
    )
    result, report = plan_fn(bundle).run_with_report(config)
    return {
        "time_s": result.total_time_s,
        "cost_usd": result.total_cost_usd,
        "replans": list(report.replans),
        "records": [
            (r.uid, tuple(sorted(r.fields.items()))) for r in result.records
        ],
    }


def _warm_store(bundle, seed: int, plan_fn) -> StatisticsStore:
    store = StatisticsStore()
    _run(bundle, seed, plan_fn, store=store)
    assert len(store) > 0, "warm-up run ingested nothing"
    return store


def _measure_seed(seed: int) -> dict:
    bundle = build_replan_corpus(seed)

    # -- misestimate: static plan vs warmed-store replanned plan --------
    static = _run(bundle, seed, _misestimate_plan)
    warm = _warm_store(bundle, seed, _misestimate_plan)
    tracer = Tracer()
    replanned = _run(
        bundle,
        seed,
        _misestimate_plan,
        store=warm,
        tracer=tracer,
        stats_estimates=False,
        replan=True,
    )
    validate_spans(tracer.spans)
    replan_spans = tracer.by_kind("replan")

    # -- cold: an empty store must change nothing -----------------------
    cold = _run(
        bundle, seed, _misestimate_plan, store=StatisticsStore(), replan=True
    )

    # -- accurate: prior-fed estimates match observation, no trigger ----
    plain_static = _run(bundle, seed, _plain_plan)
    plain_warm = _warm_store(bundle, seed, _plain_plan)
    accurate = _run(
        bundle, seed, _plain_plan, store=plain_warm, replan=True
    )

    return {
        "static": static,
        "replanned": replanned,
        "cold": cold,
        "accurate": accurate,
        "cost_ratio": static["cost_usd"] / max(1e-12, replanned["cost_usd"]),
        "speedup": static["time_s"] / max(1e-12, replanned["time_s"]),
        "identical": (
            replanned["records"] == static["records"]
            and cold["records"] == static["records"]
            and accurate["records"] == plain_static["records"]
        ),
        "replan_spans": [
            {
                "cause": span.attributes.get("cause", ""),
                "before_plan": span.attributes.get("before_plan", ""),
                "after_plan": span.attributes.get("after_plan", ""),
            }
            for span in replan_spans
        ],
    }


def _sweep(seeds) -> dict:
    return {seed: _measure_seed(seed) for seed in seeds}


def _render(results) -> str:
    headers = [
        "Seed",
        "Static ($)",
        "Replanned ($)",
        "Cost ratio",
        "Speedup",
        "Replans",
        "Cold replans",
        "Identical",
    ]
    rows = []
    for seed, entry in sorted(results.items()):
        rows.append(
            [
                str(seed),
                f"{entry['static']['cost_usd']:.4f}",
                f"{entry['replanned']['cost_usd']:.4f}",
                f"{entry['cost_ratio']:.2f}x",
                f"{entry['speedup']:.2f}x",
                str(len(entry["replanned"]["replans"])),
                str(len(entry["cold"]["replans"])),
                "yes" if entry["identical"] else "NO",
            ]
        )
    return format_table(
        headers,
        rows,
        title=(
            f"Mid-query replan (where->common->rare->map, "
            f"{N_RECORDS} records, 2x injected cardinality misestimate)"
        ),
    )


def _check_contract(results) -> None:
    for seed, entry in results.items():
        assert entry["identical"], (
            f"seed {seed}: replanned records differ from the static plan"
        )
        assert entry["cost_ratio"] >= MIN_COST_RATIO, (
            f"seed {seed}: cost ratio {entry['cost_ratio']:.2f}x "
            f"below the {MIN_COST_RATIO}x floor"
        )
        assert len(entry["replanned"]["replans"]) == 1, (
            f"seed {seed}: expected exactly one replan, got "
            f"{len(entry['replanned']['replans'])}"
        )
        assert entry["cold"]["replans"] == [], (
            f"seed {seed}: a cold store must never replan"
        )
        assert entry["accurate"]["replans"] == [], (
            f"seed {seed}: accurate estimates must not trigger a replan"
        )
        (span,) = entry["replan_spans"]
        decision = entry["replanned"]["replans"][0]
        assert span["cause"] == decision["cause"] and span["cause"], (
            f"seed {seed}: replan span cause mismatch"
        )
        assert (
            span["before_plan"] == decision["before_plan"]
            and span["after_plan"] == decision["after_plan"]
            and span["before_plan"] != span["after_plan"]
        ), f"seed {seed}: replan span fingerprints mismatch"


def _save_json(results_dir: Path, results) -> None:
    payload = {
        "plan": "parcel where[priority >= 1]->common->rare->sem_map(value)",
        "n_records": N_RECORDS,
        "min_cost_ratio": MIN_COST_RATIO,
        "seeds": {
            str(seed): {
                "static_cost_usd": entry["static"]["cost_usd"],
                "replanned_cost_usd": entry["replanned"]["cost_usd"],
                "static_time_s": entry["static"]["time_s"],
                "replanned_time_s": entry["replanned"]["time_s"],
                "cost_ratio": entry["cost_ratio"],
                "speedup": entry["speedup"],
                "replans": entry["replanned"]["replans"],
                "cold_replans": len(entry["cold"]["replans"]),
                "accurate_replans": len(entry["accurate"]["replans"]),
                "identical_records": entry["identical"],
            }
            for seed, entry in results.items()
        },
    }
    path = results_dir / JSON_NAME
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {path}")


def bench_replan(benchmark, results_dir):
    results = benchmark.pedantic(_sweep, args=(SEEDS,), rounds=1, iterations=1)
    report = _render(results)
    save_report(results_dir, "replan", report)
    _save_json(results_dir, results)
    benchmark.extra_info["measured"] = {
        str(seed): {
            "cost_ratio": entry["cost_ratio"],
            "speedup": entry["speedup"],
            "replans": len(entry["replanned"]["replans"]),
        }
        for seed, entry in results.items()
    }
    _check_contract(results)


def main(argv: list[str]) -> int:
    unknown = [arg for arg in argv if arg != "--smoke"]
    if unknown:
        print(f"usage: bench_replan.py [--smoke]  (unknown: {unknown})")
        return 2
    smoke = "--smoke" in argv
    seeds = SEEDS[:1] if smoke else SEEDS
    results = _sweep(seeds)
    print(_render(results))
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    _save_json(RESULTS_DIR, results)
    _check_contract(results)
    worst = min(entry["cost_ratio"] for entry in results.values())
    print(
        f"\nlearned priors + one mid-query filter reorder cut cost >= "
        f"{worst:.2f}x under a 2x cardinality misestimate, records "
        f"bit-identical — contract holds"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
