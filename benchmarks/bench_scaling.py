"""Ablation: cost/time scaling with corpus size.

Sweeps the email corpus size and compares a full-scan semantic-operator
program against the compute operator.  Both scale linearly in LLM calls
(every email must be judged), but compute's pushdown keeps the extraction
stage proportional to *matches*, so its slope is flatter — and the naive
CodeAgent stays nearly flat (it never reads more than its diligence
budget), which is exactly why its recall collapses.
"""

from __future__ import annotations

from conftest import save_report

from repro.agents.codeagent import CodeAgent
from repro.agents.filetools import build_file_tools
from repro.agents.policies.deep_research import EnronCodeAgentPolicy
from repro.bench.metrics import set_metrics
from repro.core.runtime import AnalyticsRuntime
from repro.data.corpus import FileCorpus
from repro.data.datasets import enron as en
from repro.data.datasets.base import DatasetBundle
from repro.data.datasets.enron import generate_enron_corpus
from repro.data.schemas import Field
from repro.llm.oracle import SemanticOracle
from repro.llm.simulated import SimulatedLLM
from repro.sem.config import QueryProcessorConfig
from repro.sem.dataset import Dataset
from repro.utils.formatting import format_table

SEED = 919191
SIZES = (60, 120, 250)


def _subset_bundle(bundle: DatasetBundle, n: int) -> DatasetBundle:
    records = bundle.records()[:n]
    filenames = {record["filename"] for record in records}
    corpus = FileCorpus(f"{bundle.name}-{n}")
    for filename in bundle.corpus.list_files():
        if filename in filenames:
            corpus.add(
                filename,
                bundle.corpus.read_file(filename),
                bundle.corpus.annotations_for(filename),
            )
    gold = [
        name
        for name in bundle.ground_truth["relevant_filenames"]
        if name in filenames
    ]
    return DatasetBundle(
        name=f"{bundle.name}-{n}",
        corpus=corpus,
        schema=bundle.schema,
        registry=bundle.registry,
        description=bundle.description,
        ground_truth={"relevant_filenames": gold, "n_relevant": len(gold)},
        record_list=records,
    )


def _run_semops(bundle: DatasetBundle) -> dict:
    llm = SimulatedLLM(oracle=SemanticOracle(bundle.registry), seed=SEED)
    dataset = (
        Dataset.from_source(bundle.source())
        .sem_filter(en.FILTER_RELEVANT)
        .sem_map(Field("summary", str, "summary"), en.MAP_SUMMARY)
    )
    result = dataset.run(QueryProcessorConfig(llm=llm, optimize=False, seed=SEED))
    metrics = set_metrics(
        bundle.ground_truth["relevant_filenames"],
        [record.get("filename") for record in result.records],
    )
    return {"f1": metrics.f1, "cost": llm.tracker.total().cost_usd, "time": llm.clock.elapsed}


def _run_compute(bundle: DatasetBundle) -> dict:
    runtime = AnalyticsRuntime.for_bundle(bundle, seed=SEED)
    context = runtime.make_context(bundle)
    result = runtime.compute(context, en.QUERY_RELEVANT)
    metrics = set_metrics(
        bundle.ground_truth["relevant_filenames"],
        [row.get("filename") for row in (result.answer or []) if isinstance(row, dict)],
    )
    return {"f1": metrics.f1, "cost": result.cost_usd, "time": result.time_s}


def _run_codeagent(bundle: DatasetBundle) -> dict:
    llm = SimulatedLLM(oracle=SemanticOracle(bundle.registry), seed=SEED)
    agent = CodeAgent(
        llm, build_file_tools(bundle.corpus), EnronCodeAgentPolicy(), seed=SEED
    )
    result = agent.run(en.QUERY_RELEVANT)
    metrics = set_metrics(bundle.ground_truth["relevant_filenames"], result.answer or [])
    return {"f1": metrics.f1, "cost": result.cost_usd, "time": result.time_s}


def bench_scaling(benchmark, enron_bundle, results_dir):
    def run_all():
        series = {}
        for size in SIZES:
            bundle = _subset_bundle(enron_bundle, size)
            series[size] = {
                "semops": _run_semops(bundle),
                "compute": _run_compute(bundle),
                "codeagent": _run_codeagent(bundle),
            }
        return series

    series = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for size, result in series.items():
        for system in ("semops", "compute", "codeagent"):
            r = result[system]
            rows.append(
                [size, system, f"{r['f1'] * 100:.1f}%", f"{r['cost']:.3f}", f"{r['time']:.1f}"]
            )
    report = format_table(
        ["Corpus size", "System", "F1", "Cost ($)", "Time (s)"],
        rows,
        title="Scaling with corpus size (Enron query)",
    )
    save_report(results_dir, "scaling", report)
    benchmark.extra_info["measured"] = {
        str(size): result for size, result in series.items()
    }

    smallest, largest = SIZES[0], SIZES[-1]
    growth = series[largest]["semops"]["cost"] / max(1e-9, series[smallest]["semops"]["cost"])
    agent_growth = series[largest]["codeagent"]["cost"] / max(
        1e-9, series[smallest]["codeagent"]["cost"]
    )
    # Full-scan cost grows ~linearly with corpus size; the naive agent's
    # bounded diligence makes its cost grow distinctly sublinearly (and its
    # recall fall) as the corpus outgrows what it is willing to read.
    assert growth > 2.5
    assert agent_growth < 0.8 * growth
    assert series[largest]["codeagent"]["f1"] < series[smallest]["codeagent"]["f1"]
    assert series[largest]["compute"]["f1"] > 0.85
