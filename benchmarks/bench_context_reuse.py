"""Context & sub-plan reuse (paper §2.4 + §3 physical optimization).

Two layers of reuse are measured:

1. **Agent-level Context reuse** (the original ablation): two related
   queries; with the ContextManager enabled the second query's semantic
   program runs over the Context materialized by the first query instead
   of the full lake.
2. **Sub-plan materialization** (the runtime-wide layer): the same plan
   run cold then warm against a shared
   :class:`~repro.sem.materialize.MaterializationStore` (repeated-query
   scenario), and a plan re-run after records were appended to its source
   (incremental-append scenario, where only the delta flows through the
   reused prefix).  Every run uses a *fresh* simulated substrate with the
   same seed, so the generation cache cannot leak answers between runs —
   any saving is attributable to the materialization layer alone.

Emits ``BENCH_context_reuse.json`` with cold/warm/incremental cost and
virtual-latency ratios plus bit-identity flags.  Contract: >= 2x cost
reduction for the repeated query, >= 1.5x for the incremental append,
records bit-identical in both scenarios.

Run standalone for a quick check::

    PYTHONPATH=src python benchmarks/bench_context_reuse.py --smoke
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from conftest import RESULTS_DIR, save_report

from repro.core.program_tool import build_program_tool
from repro.core.runtime import AnalyticsRuntime
from repro.data.datasets import enron as en
from repro.data.schemas import Field
from repro.llm.oracle import SemanticOracle
from repro.llm.simulated import SimulatedLLM
from repro.sem.config import QueryProcessorConfig
from repro.sem.dataset import Dataset
from repro.sem.materialize import MaterializationStore
from repro.utils.formatting import format_table

FIRST = (
    "Find the files which report national identity theft statistics for "
    "the year 2001 and extract the number of identity theft reports in "
    "the year 2001."
)
SECOND = (
    "Find the files which report national identity theft statistics for "
    "the year 2024 and extract the number of identity theft reports in "
    "the year 2024."
)
SEED = 515151

#: Seeds for the materialization sweep (smoke mode runs the first only).
MAT_SEEDS = (7, 8, 9)
#: Records in the v1 source; the rest of the corpus is the appended delta.
APPEND_BASE = 200
MIN_REPEAT_RATIO = 2.0
MIN_APPEND_RATIO = 1.5
JSON_NAME = "BENCH_context_reuse.json"


# ----------------------------------------------------------------------
# Agent-level Context reuse (original ablation)
# ----------------------------------------------------------------------


def _run_agent_ablation(legal_bundle, reuse: bool) -> dict:
    runtime = AnalyticsRuntime.for_bundle(legal_bundle, seed=SEED, reuse_contexts=reuse)
    context = runtime.make_context(legal_bundle)
    tool = build_program_tool(context, runtime)
    tool(FIRST)
    first_cost = runtime.usage().cost_usd
    first_time = runtime.elapsed_s
    second = tool(SECOND)
    return {
        "reuse": reuse,
        "first_cost": first_cost,
        "second_cost": runtime.usage().cost_usd - first_cost,
        "second_time": runtime.elapsed_s - first_time,
        "second_records": len(second),
        "cache_hits": sum(entry.hits for entry in runtime.context_manager.entries()),
    }


# ----------------------------------------------------------------------
# Sub-plan materialization sweep
# ----------------------------------------------------------------------


def _plan(records, schema) -> Dataset:
    return (
        Dataset.from_records(records, schema, source_id="enron")
        .sem_filter(en.FILTER_MENTIONS)
        .sem_filter(en.FILTER_FIRSTHAND)
        .sem_map(Field("summary", str), en.MAP_SUMMARY)
    )


def _run_materialized(bundle, records, store, seed: int) -> dict:
    """One end-to-end run with a fresh substrate against a shared store.

    The optimizer is on (filter reordering exercises fingerprint
    canonicalization; sampling keeps the warm spend non-zero so ratios
    stay finite) but model selection is off, pinning every operator to the
    champion so cold and warm runs answer identically by construction.
    """
    llm = SimulatedLLM(oracle=SemanticOracle(bundle.registry), seed=seed)
    config = QueryProcessorConfig(
        llm=llm,
        seed=seed,
        optimize=True,
        select_models=False,
        materialization_store=store,
        tag="bench-reuse",
    )
    result, report = _plan(records, bundle.schema).run_with_report(config)
    return {
        "cost_usd": llm.tracker.total().cost_usd,
        "time_s": llm.clock.elapsed,
        "records": [(r.uid, tuple(sorted(r.fields.items()))) for r in result.records],
        "reused_prefix": report.reused_prefix,
        "reuse_kind": report.reuse_kind,
    }


def _scenario(cold: dict, warm: dict, floor: float) -> dict:
    return {
        "cold_cost_usd": cold["cost_usd"],
        "warm_cost_usd": warm["cost_usd"],
        "cold_time_s": cold["time_s"],
        "warm_time_s": warm["time_s"],
        "cost_ratio": cold["cost_usd"] / max(warm["cost_usd"], 1e-12),
        "time_ratio": cold["time_s"] / max(warm["time_s"], 1e-12),
        "identical_records": cold["records"] == warm["records"],
        "records": len(warm["records"]),
        "reused_prefix": warm["reused_prefix"],
        "reuse_kind": warm["reuse_kind"],
        "min_cost_ratio": floor,
    }


def _sweep_materialization(bundle, seeds) -> dict:
    """seed -> {repeated_query, incremental_append} scenario dicts."""
    all_records = bundle.records()
    results = {}
    for seed in seeds:
        # Repeated query: identical plan, shared store, fresh substrate.
        store = MaterializationStore()
        cold = _run_materialized(bundle, all_records, store, seed)
        warm = _run_materialized(bundle, all_records, store, seed)
        repeated = _scenario(cold, warm, MIN_REPEAT_RATIO)

        # Incremental append: prime on v1, append, re-run on v2.  The warm
        # run pushes only the appended records through the reused prefix;
        # the cold baseline recomputes v2 against an empty store.
        v1, v2 = all_records[:APPEND_BASE], all_records
        append_store = MaterializationStore()
        _run_materialized(bundle, v1, append_store, seed)
        warm_v2 = _run_materialized(bundle, v2, append_store, seed)
        cold_v2 = _run_materialized(bundle, v2, MaterializationStore(), seed)
        incremental = _scenario(cold_v2, warm_v2, MIN_APPEND_RATIO)
        incremental["delta_records"] = len(v2) - len(v1)

        results[seed] = {
            "repeated_query": repeated,
            "incremental_append": incremental,
            "store": store.stats(),
        }
    return results


def _render_materialization(results) -> str:
    headers = [
        "Seed", "Scenario", "Cold ($)", "Warm ($)", "Cost ratio",
        "Time ratio", "Prefix", "Kind", "Identical",
    ]
    rows = []
    for seed, entry in sorted(results.items()):
        for label in ("repeated_query", "incremental_append"):
            scenario = entry[label]
            rows.append(
                [
                    str(seed),
                    label.replace("_", "-"),
                    f"{scenario['cold_cost_usd']:.4f}",
                    f"{scenario['warm_cost_usd']:.4f}",
                    f"{scenario['cost_ratio']:.2f}x",
                    f"{scenario['time_ratio']:.2f}x",
                    str(scenario["reused_prefix"]),
                    scenario["reuse_kind"] or "-",
                    "yes" if scenario["identical_records"] else "NO",
                ]
            )
    return format_table(
        headers,
        rows,
        title="Sub-plan materialization (cold vs warm vs incremental append)",
    )


def _check_contract(results) -> None:
    for seed, entry in results.items():
        for label in ("repeated_query", "incremental_append"):
            scenario = entry[label]
            assert scenario["identical_records"], (
                f"seed {seed} {label}: warm records differ from cold"
            )
            assert scenario["reused_prefix"] > 0, (
                f"seed {seed} {label}: warm run reused nothing"
            )
            assert scenario["cost_ratio"] >= scenario["min_cost_ratio"], (
                f"seed {seed} {label}: cost ratio {scenario['cost_ratio']:.2f}x "
                f"below the {scenario['min_cost_ratio']}x floor"
            )


def _save_json(results_dir: Path, results, agent: dict | None = None) -> None:
    payload = {
        "plan": "enron filter->filter->map (optimizer on, models pinned)",
        "append_base": APPEND_BASE,
        "min_repeat_ratio": MIN_REPEAT_RATIO,
        "min_append_ratio": MIN_APPEND_RATIO,
        "seeds": {str(seed): entry for seed, entry in results.items()},
    }
    if agent is not None:
        payload["agent_context_reuse"] = agent
    path = results_dir / JSON_NAME
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {path}")


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------


def bench_context_reuse(benchmark, legal_bundle, enron_bundle, results_dir):
    def _full():
        off = _run_agent_ablation(legal_bundle, False)
        on = _run_agent_ablation(legal_bundle, True)
        sweep = _sweep_materialization(enron_bundle, MAT_SEEDS)
        return off, on, sweep

    off, on, sweep = benchmark.pedantic(_full, rounds=1, iterations=1)
    rows = [
        ["off", f"{off['second_cost']:.4f}", f"{off['second_time']:.1f}", off["second_records"], off["cache_hits"]],
        ["on", f"{on['second_cost']:.4f}", f"{on['second_time']:.1f}", on["second_records"], on["cache_hits"]],
    ]
    report = format_table(
        ["Reuse", "2nd-query cost ($)", "2nd-query time (s)", "records", "cache hits"],
        rows,
        title="Context reuse ablation (second of two related queries)",
    )
    saving = 1 - on["second_cost"] / off["second_cost"]
    report += f"\n\nmarginal cost saving from reuse: {saving * 100:.1f}%"
    report += "\n\n" + _render_materialization(sweep)
    save_report(results_dir, "context_reuse", report)
    agent = {"off": off, "on": on, "saving": saving}
    _save_json(results_dir, sweep, agent=agent)
    benchmark.extra_info["measured"] = {"agent": agent, "materialization": sweep}

    assert on["cache_hits"] >= 1, "reuse run must hit the context cache"
    assert on["second_cost"] < 0.5 * off["second_cost"]
    assert on["second_time"] < off["second_time"]
    _check_contract(sweep)


def main(argv: list[str]) -> int:
    unknown = [arg for arg in argv if arg != "--smoke"]
    if unknown:
        print(f"usage: bench_context_reuse.py [--smoke]  (unknown: {unknown})")
        return 2
    smoke = "--smoke" in argv
    from repro.data.datasets import generate_enron_corpus

    bundle = generate_enron_corpus()
    seeds = MAT_SEEDS[:1] if smoke else MAT_SEEDS
    results = _sweep_materialization(bundle, seeds)
    print(_render_materialization(results))
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    _save_json(RESULTS_DIR, results)
    _check_contract(results)
    worst_repeat = min(e["repeated_query"]["cost_ratio"] for e in results.values())
    worst_append = min(e["incremental_append"]["cost_ratio"] for e in results.values())
    print(
        f"\nmaterialization reuse cuts repeated-query cost >= "
        f"{worst_repeat:.2f}x and incremental-append cost >= "
        f"{worst_append:.2f}x with bit-identical records — contract holds"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
