"""Ablation: Context reuse (paper §2.4 + §3 physical optimization).

Two related queries (identity-theft statistics for 2001, then for 2024).
With the ContextManager enabled, the second query's semantic program is
run over the Context materialized by the first query instead of the full
132-file lake, cutting marginal cost and simulated latency.
"""

from __future__ import annotations

from conftest import save_report

from repro.core.program_tool import build_program_tool
from repro.core.runtime import AnalyticsRuntime
from repro.utils.formatting import format_table

FIRST = (
    "Find the files which report national identity theft statistics for "
    "the year 2001 and extract the number of identity theft reports in "
    "the year 2001."
)
SECOND = (
    "Find the files which report national identity theft statistics for "
    "the year 2024 and extract the number of identity theft reports in "
    "the year 2024."
)
SEED = 515151


def _run(legal_bundle, reuse: bool) -> dict:
    runtime = AnalyticsRuntime.for_bundle(legal_bundle, seed=SEED, reuse_contexts=reuse)
    context = runtime.make_context(legal_bundle)
    tool = build_program_tool(context, runtime)
    tool(FIRST)
    first_cost = runtime.usage().cost_usd
    first_time = runtime.elapsed_s
    second = tool(SECOND)
    return {
        "reuse": reuse,
        "first_cost": first_cost,
        "second_cost": runtime.usage().cost_usd - first_cost,
        "second_time": runtime.elapsed_s - first_time,
        "second_records": len(second),
        "cache_hits": sum(entry.hits for entry in runtime.context_manager.entries()),
    }


def bench_context_reuse(benchmark, legal_bundle, results_dir):
    off, on = benchmark.pedantic(
        lambda: (_run(legal_bundle, False), _run(legal_bundle, True)),
        rounds=1,
        iterations=1,
    )
    rows = [
        ["off", f"{off['second_cost']:.4f}", f"{off['second_time']:.1f}", off["second_records"], off["cache_hits"]],
        ["on", f"{on['second_cost']:.4f}", f"{on['second_time']:.1f}", on["second_records"], on["cache_hits"]],
    ]
    report = format_table(
        ["Reuse", "2nd-query cost ($)", "2nd-query time (s)", "records", "cache hits"],
        rows,
        title="Context reuse ablation (second of two related queries)",
    )
    saving = 1 - on["second_cost"] / off["second_cost"]
    report += f"\n\nmarginal cost saving from reuse: {saving * 100:.1f}%"
    save_report(results_dir, "context_reuse", report)
    benchmark.extra_info["measured"] = {"off": off, "on": on}

    assert on["cache_hits"] >= 1, "reuse run must hit the context cache"
    assert on["second_cost"] < 0.5 * off["second_cost"]
    assert on["second_time"] < off["second_time"]
