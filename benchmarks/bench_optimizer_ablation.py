"""Ablation: what each optimizer feature buys on the Enron program.

Runs the two-filter + three-extraction Enron program under four optimizer
configurations and reports quality/cost/time:

- naive: no optimization (written order, champion model everywhere);
- reorder-only: filter reordering by sampled cost/selectivity;
- models-only: policy-driven model selection, written order;
- full: both.

This isolates where ``PZ compute``'s Table-2 savings come from.
"""

from __future__ import annotations

from conftest import save_report

from repro.bench.metrics import set_metrics
from repro.data.datasets import enron as en
from repro.data.schemas import Field
from repro.llm.oracle import SemanticOracle
from repro.llm.simulated import SimulatedLLM
from repro.sem.config import QueryProcessorConfig
from repro.sem.dataset import Dataset
from repro.sem.optimizer.policies import Balanced
from repro.utils.formatting import format_table

SEED = 616161


def _program(bundle) -> Dataset:
    return (
        Dataset.from_source(bundle.source())
        .sem_filter(en.FILTER_MENTIONS)
        .sem_filter(en.FILTER_FIRSTHAND)
        .sem_map(
            [
                (Field("summary", str, "summary"), en.MAP_SUMMARY),
                (Field("x_sender", str, "sender"), en.MAP_SENDER),
            ]
        )
    )


def _run(bundle, optimize: bool, reorder: bool, select_models: bool) -> dict:
    llm = SimulatedLLM(oracle=SemanticOracle(bundle.registry), seed=SEED)
    config = QueryProcessorConfig(
        llm=llm,
        policy=Balanced(quality_floor=0.95),
        optimize=optimize,
        reorder_filters=reorder,
        select_models=select_models,
        seed=SEED,
    )
    result = _program(bundle).run(config)
    metrics = set_metrics(
        bundle.ground_truth["relevant_filenames"],
        [record.get("filename") for record in result.records],
    )
    return {
        "f1": metrics.f1,
        "cost": llm.tracker.total().cost_usd,
        "time": llm.clock.elapsed,
    }


def bench_optimizer_ablation(benchmark, enron_bundle, results_dir):
    def run_all():
        return {
            "naive": _run(enron_bundle, optimize=False, reorder=False, select_models=False),
            "reorder-only": _run(enron_bundle, optimize=True, reorder=True, select_models=False),
            "models-only": _run(enron_bundle, optimize=True, reorder=False, select_models=True),
            "full": _run(enron_bundle, optimize=True, reorder=True, select_models=True),
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [name, f"{r['f1'] * 100:.2f}%", f"{r['cost']:.3f}", f"{r['time']:.1f}"]
        for name, r in results.items()
    ]
    report = format_table(
        ["Configuration", "F1", "Cost ($)", "Time (s)"],
        rows,
        title="Optimizer ablation on the Enron program",
    )
    save_report(results_dir, "optimizer_ablation", report)
    benchmark.extra_info["measured"] = results

    assert results["reorder-only"]["cost"] < results["naive"]["cost"]
    assert results["models-only"]["cost"] < results["naive"]["cost"]
    assert results["full"]["cost"] < results["reorder-only"]["cost"]
    assert results["full"]["f1"] > 0.85
    # Quality stays within a few points of the unoptimized champion plan.
    assert abs(results["full"]["f1"] - results["naive"]["f1"]) < 0.10
