"""Ablation: the quality/cost frontier across model tiers & policies.

Runs the Enron relevant-email filter as a single-operator program pinned to
each chat model, plus the three optimizer policies, and reports the
frontier.  This is the §3 physical optimization ("allow the query
optimizer to select the model") made measurable.
"""

from __future__ import annotations

from conftest import save_report

from repro.bench.metrics import set_metrics
from repro.data.datasets import enron as en
from repro.llm.models import completion_models_by_cost
from repro.llm.oracle import SemanticOracle
from repro.llm.simulated import SimulatedLLM
from repro.sem.config import QueryProcessorConfig
from repro.sem.dataset import Dataset
from repro.sem.optimizer.policies import Balanced, MaxQuality, MinCost
from repro.utils.formatting import format_table

SEED = 717171


def _run_pinned(bundle, model: str) -> dict:
    llm = SimulatedLLM(oracle=SemanticOracle(bundle.registry), seed=SEED)
    dataset = Dataset.from_source(bundle.source()).sem_filter(
        en.FILTER_RELEVANT, model=model
    )
    result = dataset.run(QueryProcessorConfig(llm=llm, optimize=False, seed=SEED))
    metrics = set_metrics(
        bundle.ground_truth["relevant_filenames"],
        [record.get("filename") for record in result.records],
    )
    return {"f1": metrics.f1, "cost": llm.tracker.total().cost_usd}


def _run_policy(bundle, policy) -> dict:
    llm = SimulatedLLM(oracle=SemanticOracle(bundle.registry), seed=SEED)
    dataset = Dataset.from_source(bundle.source()).sem_filter(en.FILTER_RELEVANT)
    result, report = dataset.run_with_report(
        QueryProcessorConfig(llm=llm, policy=policy, seed=SEED)
    )
    metrics = set_metrics(
        bundle.ground_truth["relevant_filenames"],
        [record.get("filename") for record in result.records],
    )
    chosen = next(iter(report.chosen_models.values()), "?")
    return {"f1": metrics.f1, "cost": llm.tracker.total().cost_usd, "model": chosen}


def bench_model_selection(benchmark, enron_bundle, results_dir):
    def run_all():
        pinned = {
            card.name: _run_pinned(enron_bundle, card.name)
            for card in completion_models_by_cost()
        }
        policies = {
            "policy:max-quality": _run_policy(enron_bundle, MaxQuality()),
            "policy:balanced(0.95)": _run_policy(enron_bundle, Balanced(0.95)),
            "policy:min-cost": _run_policy(enron_bundle, MinCost()),
        }
        return pinned, policies

    pinned, policies = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [name, f"{r['f1'] * 100:.2f}%", f"{r['cost']:.3f}", r.get("model", "-")]
        for name, r in {**pinned, **policies}.items()
    ]
    report = format_table(
        ["Model / policy", "F1", "Cost ($)", "Chosen"],
        rows,
        title="Model-selection frontier on the Enron relevant-email filter",
    )
    save_report(results_dir, "model_selection", report)
    benchmark.extra_info["measured"] = {"pinned": pinned, "policies": policies}

    names = [card.name for card in completion_models_by_cost()]
    cheapest, champion = names[0], names[-1]
    assert pinned[champion]["f1"] >= pinned[cheapest]["f1"]
    assert pinned[cheapest]["cost"] < pinned[champion]["cost"]
    assert policies["policy:min-cost"]["cost"] <= policies["policy:max-quality"]["cost"]
    assert policies["policy:max-quality"]["f1"] >= pinned[cheapest]["f1"]
