"""Ablation: embedding-blocked semantic joins vs nested-loop joins.

Semantic joins are the most expensive operator family (O(n*m) LLM
judgments).  This bench joins senders' emails against a roster of deal
records and compares the nested-loop physical join with the
embedding-blocked variant (paper §3's physical-optimization direction,
applied to joins).
"""

from __future__ import annotations

from conftest import save_report

from repro.data.records import DataRecord
from repro.data.schemas import Field, Schema
from repro.llm.oracle import DIFFICULTY_PREFIX, IntentRegistry, SemanticOracle
from repro.llm.simulated import SimulatedLLM
from repro.sem.config import QueryProcessorConfig
from repro.sem.dataset import Dataset
from repro.utils.formatting import format_table
from repro.utils.seeding import SeededRng

SEED = 121212
N_LEFT = 24
N_RIGHT = 30

SCHEMA = Schema([Field("name", str), Field("text", str)])

_TOPICS = ["gadgets", "plants", "sports", "cooking", "finance", "travel"]


def _records(prefix: str, n: int, rng: SeededRng):
    records = []
    for index in range(n):
        topic = _TOPICS[index % len(_TOPICS)]
        filler = " ".join(rng.child(index).sample(
            ["update", "note", "report", "memo", "review", "digest", "brief"], 3
        ))
        records.append(
            DataRecord(
                {
                    "name": f"{prefix}{index}",
                    "text": f"a {filler} about {topic} and related {topic} matters",
                },
                uid=f"{prefix}{index}",
                annotations={
                    "jb.topic": topic,
                    DIFFICULTY_PREFIX + "jb.topic": 0.05,
                },
            )
        )
    return records


def _expected_equal_pairs() -> int:
    left_topics = [_TOPICS[i % len(_TOPICS)] for i in range(N_LEFT)]
    right_topics = [_TOPICS[i % len(_TOPICS)] for i in range(N_RIGHT)]
    return sum(
        1
        for lt in left_topics
        for rt in right_topics
        if lt == rt
    )


def _run(method: str) -> dict:
    registry = IntentRegistry()
    registry.register("jb.topic", ["records", "same", "topic"])
    llm = SimulatedLLM(oracle=SemanticOracle(registry), seed=SEED)
    rng = SeededRng(SEED)
    left = Dataset.from_records(_records("l", N_LEFT, rng.child("left")), SCHEMA, "left")
    right = Dataset.from_records(_records("r", N_RIGHT, rng.child("right")), SCHEMA, "right")
    joined = left.sem_join(right, "the records discuss the same topic")
    result = joined.run(QueryProcessorConfig(llm=llm, join_method=method, seed=SEED))
    judgments = sum(
        1 for event in llm.tracker.events
        if event.tag.endswith(":join") and event.output_tokens > 0
    )
    return {
        "pairs_judged": judgments,
        "matches": len(result.records),
        "cost": llm.tracker.total().cost_usd,
        "time": llm.clock.elapsed,
    }


def bench_join_blocking(benchmark, results_dir):
    nested, blocked = benchmark.pedantic(
        lambda: (_run("nested"), _run("blocked")), rounds=1, iterations=1
    )
    rows = [
        ["nested", nested["pairs_judged"], nested["matches"],
         f"{nested['cost']:.4f}", f"{nested['time']:.1f}"],
        ["blocked", blocked["pairs_judged"], blocked["matches"],
         f"{blocked['cost']:.4f}", f"{blocked['time']:.1f}"],
    ]
    report = format_table(
        ["Join method", "Pairs judged", "Output pairs", "Cost ($)", "Time (s)"],
        rows,
        title=f"Semantic join blocking ({N_LEFT} x {N_RIGHT} records)",
    )
    report += (
        f"\n\njudgment reduction: "
        f"{(1 - blocked['pairs_judged'] / nested['pairs_judged']) * 100:.1f}%"
    )
    save_report(results_dir, "join_blocking", report)
    benchmark.extra_info["measured"] = {"nested": nested, "blocked": blocked}

    assert nested["pairs_judged"] == N_LEFT * N_RIGHT
    assert blocked["pairs_judged"] < 0.5 * nested["pairs_judged"]
    assert blocked["cost"] < nested["cost"]
    # Blocking keeps at least ~80% of the true matches on this workload.
    assert blocked["matches"] >= 0.8 * nested["matches"]
