"""Ablation: §3 logical optimizations (split, merge, dynamic search).

Three mini-experiments:

1. **Split**: a compound predicate run as a single muddled filter vs.
   split into two sequential filters (DocETL-style rewrite) — the split
   plan recovers precision the compound filter loses.
2. **Merge**: a batch of four compute instructions containing
   near-duplicates executes only the unique ones.
3. **Recovery**: a phrasing the compute planner cannot handle directly
   fails validation, triggering dynamic search insertion + retry.
"""

from __future__ import annotations

from conftest import save_report

from repro.bench.metrics import set_metrics
from repro.core.program_tool import build_program_tool
from repro.core.rewrites import (
    compute_batch,
    compute_with_recovery,
    split_instruction,
)
from repro.core.runtime import AnalyticsRuntime
from repro.data.datasets import enron as en
from repro.data.datasets import kramabench as kb
from repro.utils.formatting import format_table

SEED = 818181

#: A compound directive: as one filter it resolves only to the dominant
#: (mentions) predicate; split, it applies both predicates.
COMPOUND = (
    "The email mentions one or more of the specific business transactions. "
    "The email contains firsthand discussion of the business transactions, "
    "not forwarded news or third-party reports."
)


def _split_experiment(enron_bundle) -> dict:
    gold = enron_bundle.ground_truth["relevant_filenames"]

    def run(instructions: list[str]) -> dict:
        runtime = AnalyticsRuntime.for_bundle(enron_bundle, seed=SEED)
        context = runtime.make_context(enron_bundle)
        tool = build_program_tool(context, runtime)
        keys = None
        for instruction in instructions:
            rows = tool(f"Return all emails which satisfy: {instruction}")
            returned = {row["filename"] for row in rows}
            keys = returned if keys is None else keys & returned
        metrics = set_metrics(gold, keys or set())
        return {"f1": metrics.f1, "precision": metrics.precision,
                "recall": metrics.recall, "cost": runtime.usage().cost_usd}

    unsplit = run([COMPOUND])
    split = run(split_instruction(COMPOUND))
    return {"unsplit": unsplit, "split": split}


def _merge_experiment(legal_bundle) -> dict:
    instructions = [
        "Compute the ratio between the number of identity theft reports in "
        "the year 2024 and the number of identity theft reports in the year 2001.",
        "Compute the ratio between the number of identity theft reports in "
        "the year 2024 and the number of identity theft reports in the year "
        "2001, please.",
        "Compute the ratio between the number of identity theft reports in "
        "the year 2024 and the number of identity theft reports in the year 2001.",
    ]

    runtime = AnalyticsRuntime.for_bundle(legal_bundle, seed=SEED)
    context = runtime.make_context(legal_bundle)
    merged_results = compute_batch(context, instructions, runtime)
    merged_cost = runtime.usage().cost_usd

    runtime2 = AnalyticsRuntime.for_bundle(legal_bundle, seed=SEED)
    context2 = runtime2.make_context(legal_bundle)
    for instruction in instructions:
        runtime2.compute(context2, instruction)
    unmerged_cost = runtime2.usage().cost_usd

    answers_agree = len({round((r.answer or {}).get("ratio", -1), 6) for r in merged_results}) == 1
    return {
        "merged_cost": merged_cost,
        "unmerged_cost": unmerged_cost,
        "answers_agree": answers_agree,
    }


def _recovery_experiment(legal_bundle) -> dict:
    runtime = AnalyticsRuntime.for_bundle(legal_bundle, seed=SEED)
    context = runtime.make_context(legal_bundle)
    awkward = (
        "Determine how many times larger the count of identity theft "
        "reports was in 2024 compared to 2001."
    )
    result, recovered = compute_with_recovery(
        context,
        awkward,
        runtime,
        is_valid=lambda answer: isinstance(answer, dict) and "ratio" in answer,
    )
    return {
        "recovered": recovered,
        "has_ratio": isinstance(result.answer, dict) and "ratio" in result.answer,
    }


def bench_logical_rewrites(benchmark, enron_bundle, legal_bundle, results_dir):
    def run_all():
        return (
            _split_experiment(enron_bundle),
            _merge_experiment(legal_bundle),
            _recovery_experiment(legal_bundle),
        )

    split_res, merge_res, recovery_res = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        ["unsplit filter", f"{split_res['unsplit']['f1'] * 100:.2f}%",
         f"{split_res['unsplit']['precision'] * 100:.1f}%",
         f"{split_res['unsplit']['cost']:.3f}"],
        ["split filters", f"{split_res['split']['f1'] * 100:.2f}%",
         f"{split_res['split']['precision'] * 100:.1f}%",
         f"{split_res['split']['cost']:.3f}"],
    ]
    report = format_table(
        ["Plan", "F1", "Precision", "Cost ($)"],
        rows,
        title="Split rewrite on a compound Enron predicate",
    )
    report += (
        f"\n\nMerge: 3 compute calls (2 duplicates) cost "
        f"${merge_res['merged_cost']:.3f} merged vs "
        f"${merge_res['unmerged_cost']:.3f} unmerged; answers agree: "
        f"{merge_res['answers_agree']}"
        f"\nRecovery: dynamic search inserted: {recovery_res['recovered']}; "
        f"retry produced a ratio: {recovery_res['has_ratio']}"
    )
    save_report(results_dir, "logical_rewrites", report)
    benchmark.extra_info["measured"] = {
        "split": split_res, "merge": merge_res, "recovery": recovery_res
    }

    assert split_res["split"]["precision"] > split_res["unsplit"]["precision"]
    assert split_res["split"]["f1"] > split_res["unsplit"]["f1"]
    assert merge_res["merged_cost"] < 0.6 * merge_res["unmerged_cost"]
    assert merge_res["answers_agree"]
    assert recovery_res["recovered"] and recovery_res["has_ratio"]
