"""Standing queries: incremental view maintenance vs per-tick recompute.

A standing query (``repro.sem.streaming``) keeps a registered plan's result
live as its source receives appends: each refresh tick replays the
fingerprinted delta-safe prefix from the materialization store and runs
only the appended records through it, then emits an insert/retract
changelog against the previous view.  The naive alternative re-runs the
full plan from scratch after every append batch.

One case, swept over seeds: a filter/map-heavy enron plan (two semantic
filters + a summary map, delta-safe end to end) over a base of
``BASE_RECORDS`` emails, then ``N_TICKS`` append batches of
``DELTA_RECORDS`` each.  Contracts:

- **>= 5x cost reduction**: cumulative refresh spend across the append
  ticks at least ``MIN_COST_REDUCTION``x below the cumulative spend of
  per-tick full recomputes (both sides pay the identical initial run).
- **bit-identical at every tick**: the standing view equals a from-scratch
  run over the same records, uid for uid, field for field — and the
  changelog folded from empty reproduces the view exactly, every tick.
- **update convergence**: an in-place source rewrite forces invalidation
  past the delta-safe prefix (bumped ``content_version``), the next tick
  recomputes, and the view converges to the from-scratch result again.

Run standalone for a quick check::

    PYTHONPATH=src python benchmarks/bench_streaming.py --smoke
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from conftest import RESULTS_DIR, save_report

from repro.data.datasets import generate_enron_corpus
from repro.data.datasets import enron as en
from repro.data.schemas import Field
from repro.data.sources import MemorySource
from repro.llm.oracle import SemanticOracle
from repro.llm.simulated import SimulatedLLM
from repro.sem.config import QueryProcessorConfig
from repro.sem.dataset import Dataset
from repro.sem.materialize import MaterializationStore
from repro.sem.streaming import RefreshPolicy, StandingQueryManager, fold_changelog
from repro.utils.formatting import format_table

SEEDS = (0, 1, 2)
BASE_RECORDS = 32
DELTA_RECORDS = 4
N_TICKS = 8
MIN_COST_REDUCTION = 5.0
JSON_NAME = "BENCH_streaming.json"


def _plan(source: MemorySource) -> Dataset:
    return (
        Dataset.from_source(source)
        .sem_filter(en.FILTER_MENTIONS)
        .sem_filter(en.FILTER_FIRSTHAND)
        .sem_map(Field("summary", str, "one-sentence summary"), en.MAP_SUMMARY)
    )


def _normalized(records) -> list:
    return [(r.uid, tuple(sorted(r.fields.items()))) for r in records]


def _full_run(bundle, records, seed: int) -> dict:
    """From-scratch reference: fresh substrate, no store, full plan."""
    source = MemorySource(list(records), schema=bundle.schema, source_id="enron")
    llm = SimulatedLLM(oracle=SemanticOracle(bundle.registry), seed=seed)
    config = QueryProcessorConfig(
        llm=llm, optimize=False, select_models=False, seed=seed, tag="scratch"
    )
    result = _plan(source).run(config)
    return {
        "records": _normalized(result.records),
        "cost_usd": result.total_cost_usd,
        "time_s": result.total_time_s,
    }


def _run_seed(bundle, seed: int) -> dict:
    records = bundle.records()
    needed = BASE_RECORDS + N_TICKS * DELTA_RECORDS
    assert len(records) >= needed, (
        f"enron corpus too small: {len(records)} < {needed}"
    )
    base = records[:BASE_RECORDS]
    deltas = [
        records[BASE_RECORDS + tick * DELTA_RECORDS :
                BASE_RECORDS + (tick + 1) * DELTA_RECORDS]
        for tick in range(N_TICKS)
    ]

    # Standing side: one shared substrate + materialization store; each
    # append batch triggers one incremental refresh tick.
    source = MemorySource(list(base), schema=bundle.schema, source_id="enron")
    llm = SimulatedLLM(oracle=SemanticOracle(bundle.registry), seed=seed)
    store = MaterializationStore()
    config = QueryProcessorConfig(
        llm=llm,
        optimize=False,
        select_models=False,
        seed=seed,
        materialization_store=store,
    )
    manager = StandingQueryManager(store=store)
    query = manager.register(
        "enron-live",
        _plan(source),
        config,
        policy=RefreshPolicy(trigger="count", count=DELTA_RECORDS),
    )

    ticks = []
    seen = list(base)
    identical = True
    fold_identical = True
    for tick_deltas in deltas:
        source.append(list(tick_deltas))
        seen.extend(tick_deltas)
        fired = manager.pump()
        assert len(fired) == 1, f"expected one tick, got {len(fired)}"
        tick = fired[0]
        scratch = _full_run(bundle, seen, seed)
        view = _normalized(query.records)
        if view != scratch["records"]:
            identical = False
        if _normalized(query.folded()) != view:
            fold_identical = False
        ticks.append(
            {
                "tick": tick.tick,
                "standing_cost_usd": tick.cost_usd,
                "standing_time_s": tick.time_s,
                "scratch_cost_usd": scratch["cost_usd"],
                "scratch_time_s": scratch["time_s"],
                "reuse_kind": tick.reuse_kind,
                "reused_prefix": tick.reused_prefix,
                "delta_records": tick.delta_records,
                "inserts": tick.inserts,
                "retracts": tick.retracts,
            }
        )

    # Update convergence: rewrite one base email in place; the bumped
    # content_version must invalidate the delta-safe prefix, and the next
    # tick must converge on the from-scratch view of the updated source.
    victim = base[0]
    source.update(victim.uid, {"body": victim.fields["body"] + "\n[amended]"})
    update_ticks = manager.pump()
    assert len(update_ticks) == 1 and update_ticks[0].fired == "update"
    update_scratch = _full_run(bundle, seen, seed)
    update_identical = _normalized(query.records) == update_scratch["records"]
    update_fold_identical = _normalized(query.folded()) == _normalized(
        query.records
    )

    standing_total = sum(t["standing_cost_usd"] for t in ticks)
    scratch_total = sum(t["scratch_cost_usd"] for t in ticks)
    standing_time = sum(t["standing_time_s"] for t in ticks)
    scratch_time = sum(t["scratch_time_s"] for t in ticks)
    return {
        "ticks": ticks,
        "prime_cost_usd": query.ticks[0].cost_usd,
        "standing_cost_usd": standing_total,
        "scratch_cost_usd": scratch_total,
        "cost_reduction": scratch_total / max(1e-12, standing_total),
        "standing_time_s": standing_time,
        "scratch_time_s": scratch_time,
        "time_reduction": scratch_time / max(1e-12, standing_time),
        "identical": identical,
        "fold_identical": fold_identical,
        "delta_ticks": sum(1 for t in ticks if t["reuse_kind"] == "delta"),
        "update": {
            "fired": update_ticks[0].fired,
            "cost_usd": update_ticks[0].cost_usd,
            "inserts": update_ticks[0].inserts,
            "retracts": update_ticks[0].retracts,
            "identical": update_identical,
            "fold_identical": update_fold_identical,
            "store_update_invalidations": (
                query.config.materialization_store.stats()[
                    "update_invalidations"
                ]
            ),
        },
    }


def _sweep(seeds) -> dict:
    bundle = generate_enron_corpus(seed=11)
    return {seed: _run_seed(bundle, seed) for seed in seeds}


def _render(results) -> str:
    headers = [
        "Seed",
        "Standing $ (8 ticks)",
        "Scratch $ (8 ticks)",
        "Cost redux",
        "Time redux",
        "Delta ticks",
        "Identical",
        "Fold ==",
        "Update ok",
    ]
    rows = []
    for seed, entry in sorted(results.items()):
        rows.append(
            [
                str(seed),
                f"{entry['standing_cost_usd']:.4f}",
                f"{entry['scratch_cost_usd']:.4f}",
                f"{entry['cost_reduction']:.2f}x",
                f"{entry['time_reduction']:.2f}x",
                f"{entry['delta_ticks']}/{N_TICKS}",
                "yes" if entry["identical"] else "NO",
                "yes" if entry["fold_identical"] else "NO",
                "yes" if entry["update"]["identical"] else "NO",
            ]
        )
    return format_table(
        headers,
        rows,
        title=(
            f"Standing-query maintenance (enron filter/filter/map, "
            f"{BASE_RECORDS} base + {N_TICKS}x{DELTA_RECORDS} appends, "
            f"incremental vs per-tick full recompute)"
        ),
    )


def _check_contract(results) -> None:
    for seed, entry in results.items():
        assert entry["identical"], (
            f"seed {seed}: standing view diverged from from-scratch run"
        )
        assert entry["fold_identical"], (
            f"seed {seed}: folded changelog diverged from the standing view"
        )
        reduction = entry["cost_reduction"]
        assert reduction >= MIN_COST_REDUCTION, (
            f"seed {seed}: {reduction:.2f}x cost reduction below the "
            f"{MIN_COST_REDUCTION}x floor"
        )
        assert entry["delta_ticks"] == N_TICKS, (
            f"seed {seed}: only {entry['delta_ticks']}/{N_TICKS} ticks "
            f"took the delta-reuse path"
        )
        update = entry["update"]
        assert update["fired"] == "update", (
            f"seed {seed}: update event did not force a refresh"
        )
        assert update["identical"], (
            f"seed {seed}: view did not converge after the in-place update"
        )
        assert update["fold_identical"], (
            f"seed {seed}: changelog fold broken after the update tick"
        )
        assert update["store_update_invalidations"] >= 1, (
            f"seed {seed}: content-version drift never invalidated an entry"
        )


def _save_json(results_dir: Path, results) -> None:
    payload = {
        "plan": "enron sem_filter->sem_filter->sem_map(summary)",
        "base_records": BASE_RECORDS,
        "delta_records": DELTA_RECORDS,
        "n_ticks": N_TICKS,
        "min_cost_reduction": MIN_COST_REDUCTION,
        "seeds": {str(seed): entry for seed, entry in results.items()},
    }
    path = results_dir / JSON_NAME
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {path}")


def bench_streaming(benchmark, results_dir):
    results = benchmark.pedantic(_sweep, args=(SEEDS,), rounds=1, iterations=1)
    report = _render(results)
    save_report(results_dir, "streaming", report)
    _save_json(results_dir, results)
    benchmark.extra_info["measured"] = {
        str(seed): {
            "cost_reduction": entry["cost_reduction"],
            "time_reduction": entry["time_reduction"],
            "standing_cost_usd": entry["standing_cost_usd"],
            "scratch_cost_usd": entry["scratch_cost_usd"],
        }
        for seed, entry in results.items()
    }
    _check_contract(results)


def main(argv: list[str]) -> int:
    unknown = [arg for arg in argv if arg != "--smoke"]
    if unknown:
        print(f"usage: bench_streaming.py [--smoke]  (unknown: {unknown})")
        return 2
    smoke = "--smoke" in argv
    seeds = SEEDS[:1] if smoke else SEEDS
    results = _sweep(seeds)
    print(_render(results))
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    _save_json(RESULTS_DIR, results)
    _check_contract(results)
    worst = min(entry["cost_reduction"] for entry in results.values())
    print(
        f"\nincremental maintenance is >= {worst:.2f}x cheaper than per-tick "
        f"recompute with a bit-identical view at every tick — contract holds"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
