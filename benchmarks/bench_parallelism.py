"""Ablation: execution parallelism (iterator semantics vs batched calls).

The paper's reported runtimes come from (mostly) sequential operator
execution — the iterator semantics it critiques.  Real engines overlap LLM
calls; this bench sweeps the engine's parallelism knob on the Enron filter
and shows latency collapsing while cost and output stay fixed.
"""

from __future__ import annotations

from conftest import save_report

from repro.data.datasets import enron as en
from repro.llm.oracle import SemanticOracle
from repro.llm.simulated import SimulatedLLM
from repro.sem.config import QueryProcessorConfig
from repro.sem.dataset import Dataset
from repro.utils.formatting import format_table

SEED = 131313
WIDTHS = (1, 4, 16)


def _run(bundle, parallelism: int) -> dict:
    llm = SimulatedLLM(oracle=SemanticOracle(bundle.registry), seed=SEED)
    config = QueryProcessorConfig(
        llm=llm, optimize=False, parallelism=parallelism, seed=SEED
    )
    result = (
        Dataset.from_source(bundle.source())
        .sem_filter(en.FILTER_RELEVANT)
        .run(config)
    )
    return {
        "records": len(result.records),
        "cost": result.total_cost_usd,
        "time": result.total_time_s,
    }


def bench_parallelism(benchmark, enron_bundle, results_dir):
    results = benchmark.pedantic(
        lambda: {width: _run(enron_bundle, width) for width in WIDTHS},
        rounds=1,
        iterations=1,
    )
    rows = [
        [width, r["records"], f"{r['cost']:.3f}", f"{r['time']:.1f}"]
        for width, r in results.items()
    ]
    report = format_table(
        ["Parallelism", "Records out", "Cost ($)", "Time (s)"],
        rows,
        title="Execution parallelism on the Enron relevance filter (250 records)",
    )
    save_report(results_dir, "parallelism", report)
    benchmark.extra_info["measured"] = {str(k): v for k, v in results.items()}

    sequential, wide = results[WIDTHS[0]], results[WIDTHS[-1]]
    assert wide["records"] == sequential["records"]
    assert wide["cost"] == sequential["cost"]
    assert wide["time"] < 0.15 * sequential["time"]
