"""Scale-out sharded execution: makespan speedup curves and straggler skew.

The sharding pass (``repro.sem.shard``) partitions the source across N
simulated workers and runs record-local operator runs shard-parallel,
charging only the slowest shard's makespan per exchange segment.  On a
filter-heavy pipeline the speedup curve should approach the worker count
— minus the pipeline-fill penalty and whatever imbalance the partitioner
leaves — with *bit-identical records and dollars* at every shard count
(the whole point of deterministic simulated scale-out).

Two cases:

- **speedup** — where -> sem_filter -> sem_map over the QA ticket corpus,
  shard counts 1/2/4/8 under hash partitioning.  Contract: >= 2.5x
  makespan speedup at 4 shards, identical records and cost everywhere.
- **skew** — the same plan on a small corpus where hash partitioning
  leaves visibly unequal shards; round-robin dealing balances them.  The
  per-segment straggler gap (max - min shard makespan, straight from the
  exchange diagnostics) must be larger under the skewed partitioner.

Run standalone for a quick check::

    PYTHONPATH=src python benchmarks/bench_sharding.py --smoke
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from conftest import RESULTS_DIR, save_report

from repro.data.records import reset_uid_counter
from repro.data.schemas import Field
from repro.llm.oracle import SemanticOracle
from repro.llm.simulated import SimulatedLLM
from repro.qa.corpus import CorpusSpec, build_corpus, instruction_for
from repro.sem.config import QueryProcessorConfig
from repro.sem.dataset import Dataset
from repro.utils.formatting import format_table

SEEDS = (0, 1, 2)
N_RECORDS = 128
SKEW_RECORDS = 32
PARALLELISM = 4
SHARD_COUNTS = (1, 2, 4, 8)
MIN_SPEEDUP_AT_4 = 2.5
JSON_NAME = "BENCH_sharding.json"
COST_EPS = 1e-9


def _run(seed: int, n_records: int, shards: int, partitioner: str) -> dict:
    # Derived-record uids seed the simulated noise; reset the global
    # counter so every shard count replays the identical uid sequence.
    reset_uid_counter()
    bundle = build_corpus(CorpusSpec(seed=seed, n_records=n_records))
    llm = SimulatedLLM(oracle=SemanticOracle(bundle.registry), seed=seed)
    config = QueryProcessorConfig(
        llm=llm,
        optimize=False,
        parallelism=PARALLELISM,
        seed=seed,
        shards=shards,
        partitioner=partitioner,
    )
    dataset = (
        Dataset.from_source(bundle.source())
        .where("priority >= 1")
        .sem_filter(instruction_for("qa.flag_urgent"))
        .sem_map(Field("customer", str, "customer name"), instruction_for("qa.customer"))
    )
    result, report = dataset.run_with_report(config)
    straggler_gap = 0.0
    shard_rows: list[int] = []
    if report.shard_plan is not None:
        for segment in report.shard_plan.segments:
            if segment.kind != "global" and segment.straggler_gap_s > straggler_gap:
                straggler_gap = segment.straggler_gap_s
                shard_rows = list(segment.shard_rows)
    return {
        "time_s": result.total_time_s,
        "cost_usd": result.total_cost_usd,
        "straggler_gap_s": straggler_gap,
        "shard_rows": shard_rows,
        "records": [(r.uid, tuple(sorted(r.fields.items()))) for r in result.records],
    }


def _sweep(seeds) -> dict:
    """seed -> {shards, speedups, identical, cost_identical, skew}."""
    results = {}
    for seed in seeds:
        by_count = {
            count: _run(seed, N_RECORDS, count, "hash") for count in SHARD_COUNTS
        }
        base = by_count[1]
        skew = {
            "hash": _run(seed, SKEW_RECORDS, 4, "hash"),
            "round_robin": _run(seed, SKEW_RECORDS, 4, "round_robin"),
        }
        results[seed] = {
            "shards": by_count,
            "speedups": {
                count: base["time_s"] / max(1e-12, entry["time_s"])
                for count, entry in by_count.items()
            },
            "identical": all(
                entry["records"] == base["records"] for entry in by_count.values()
            ),
            "cost_identical": all(
                abs(entry["cost_usd"] - base["cost_usd"]) <= COST_EPS
                for entry in by_count.values()
            ),
            "skew": skew,
            "skew_identical": skew["hash"]["records"] == skew["round_robin"]["records"],
        }
    return results


def _render(results) -> str:
    headers = ["Seed", "1 shard (s)"] + [
        f"{count} shards" for count in SHARD_COUNTS if count > 1
    ] + ["Identical", "Cost ==", "Skew gap hash", "Skew gap rr"]
    rows = []
    for seed, entry in sorted(results.items()):
        rows.append(
            [
                str(seed),
                f"{entry['shards'][1]['time_s']:.2f}",
                *[
                    f"{entry['speedups'][count]:.2f}x"
                    for count in SHARD_COUNTS
                    if count > 1
                ],
                "yes" if entry["identical"] else "NO",
                "yes" if entry["cost_identical"] else "NO",
                f"{entry['skew']['hash']['straggler_gap_s']:.2f}s",
                f"{entry['skew']['round_robin']['straggler_gap_s']:.2f}s",
            ]
        )
    return format_table(
        headers,
        rows,
        title=(
            f"Sharded execution (where->filter->map, {N_RECORDS} records, "
            f"parallelism {PARALLELISM}, hash partitioner; skew case "
            f"{SKEW_RECORDS} records at 4 shards)"
        ),
    )


def _check_contract(results) -> None:
    for seed, entry in results.items():
        assert entry["identical"], (
            f"seed {seed}: sharded records differ from shards=1"
        )
        assert entry["cost_identical"], (
            f"seed {seed}: sharded cost differs from shards=1"
        )
        speedup = entry["speedups"][4]
        assert speedup >= MIN_SPEEDUP_AT_4, (
            f"seed {seed}: {speedup:.2f}x at 4 shards below the "
            f"{MIN_SPEEDUP_AT_4}x floor"
        )
        assert entry["skew_identical"], (
            f"seed {seed}: partitioner choice changed the records"
        )
        gap_hash = entry["skew"]["hash"]["straggler_gap_s"]
        gap_rr = entry["skew"]["round_robin"]["straggler_gap_s"]
        assert gap_hash > gap_rr, (
            f"seed {seed}: hash straggler gap {gap_hash:.2f}s not larger "
            f"than round-robin's {gap_rr:.2f}s"
        )
        assert gap_hash > 0.0, f"seed {seed}: no straggler gap measured"


def _save_json(results_dir: Path, results) -> None:
    payload = {
        "plan": "qa where[priority >= 1]->sem_filter->sem_map(customer)",
        "n_records": N_RECORDS,
        "skew_records": SKEW_RECORDS,
        "parallelism": PARALLELISM,
        "shard_counts": list(SHARD_COUNTS),
        "min_speedup_at_4": MIN_SPEEDUP_AT_4,
        "seeds": {
            str(seed): {
                "shards": {
                    str(count): {
                        "time_s": shard["time_s"],
                        "cost_usd": shard["cost_usd"],
                        "straggler_gap_s": shard["straggler_gap_s"],
                        "shard_rows": shard["shard_rows"],
                    }
                    for count, shard in entry["shards"].items()
                },
                "speedups": {
                    str(count): value
                    for count, value in entry["speedups"].items()
                },
                "identical_records": entry["identical"],
                "identical_cost": entry["cost_identical"],
                "skew": {
                    name: {
                        "straggler_gap_s": case["straggler_gap_s"],
                        "shard_rows": case["shard_rows"],
                        "time_s": case["time_s"],
                    }
                    for name, case in entry["skew"].items()
                },
            }
            for seed, entry in results.items()
        },
    }
    path = results_dir / JSON_NAME
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {path}")


def bench_sharding(benchmark, results_dir):
    results = benchmark.pedantic(_sweep, args=(SEEDS,), rounds=1, iterations=1)
    report = _render(results)
    save_report(results_dir, "sharding", report)
    _save_json(results_dir, results)
    benchmark.extra_info["measured"] = {
        str(seed): {
            "speedup_at_4": entry["speedups"][4],
            "speedup_at_8": entry["speedups"][8],
            "skew_gap_hash_s": entry["skew"]["hash"]["straggler_gap_s"],
            "skew_gap_rr_s": entry["skew"]["round_robin"]["straggler_gap_s"],
        }
        for seed, entry in results.items()
    }
    _check_contract(results)


def main(argv: list[str]) -> int:
    unknown = [arg for arg in argv if arg != "--smoke"]
    if unknown:
        print(f"usage: bench_sharding.py [--smoke]  (unknown: {unknown})")
        return 2
    smoke = "--smoke" in argv
    seeds = SEEDS[:1] if smoke else SEEDS
    results = _sweep(seeds)
    print(_render(results))
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    _save_json(RESULTS_DIR, results)
    _check_contract(results)
    worst = min(entry["speedups"][4] for entry in results.values())
    print(
        f"\n4 shards run >= {worst:.2f}x faster than one with bit-identical "
        f"records and dollars at every shard count — contract holds"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
