"""Shared fixtures for the benchmark suite.

Dataset bundles are generated once per session (they are deterministic),
and every benchmark writes its rendered report into ``benchmarks/results``
so paper-vs-measured tables survive the run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.data.datasets import (
    generate_enron_corpus,
    generate_legal_corpus,
    generate_realestate_corpus,
)

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def legal_bundle():
    return generate_legal_corpus()


@pytest.fixture(scope="session")
def enron_bundle():
    return generate_enron_corpus()


@pytest.fixture(scope="session")
def realestate_bundle():
    return generate_realestate_corpus()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


def save_report(results_dir: Path, name: str, report: str) -> None:
    (results_dir / f"{name}.txt").write_text(report + "\n", encoding="utf-8")
    print("\n" + report)
