"""SQL pushdown vs row-at-a-time: records pruned before the first LLM call.

The optimizer's pushdown pass hoists structured predicates across
commuting semantic filters, compiles the scan-adjacent structured prefix
to ``repro.sql``, and runs it *before* any LLM operator.  Because the
structured engine is token-free, every record it prunes is an LLM call
(and its simulated latency) that never happens — the paper's argument for
hybrid structured/semantic plans in one sentence.

This bench runs a filter -> where -> map plan over the QA ticket corpus
with pushdown off and on (in both row-at-a-time and columnar batch
modes), asserts >= 3x fewer records reach the first LLM operator and a
>= 1.5x end-to-end cost *and* latency win with bit-identical records
across all modes, and emits ``BENCH_pushdown.json``.

Run standalone for a quick check::

    PYTHONPATH=src python benchmarks/bench_pushdown.py --smoke
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from conftest import RESULTS_DIR, save_report

from repro.data.records import reset_uid_counter
from repro.data.schemas import Field
from repro.llm.oracle import SemanticOracle
from repro.llm.simulated import SimulatedLLM
from repro.qa.corpus import CorpusSpec, build_corpus, instruction_for
from repro.sem.config import QueryProcessorConfig
from repro.sem.dataset import Dataset
from repro.utils.formatting import format_table

SEEDS = (0, 1, 2)
N_RECORDS = 60
PARALLELISM = 4
WHERE = "priority = 4"
MIN_PRUNE_RATIO = 3.0
MIN_COST_RATIO = 1.5
MIN_SPEEDUP = 1.5
JSON_NAME = "BENCH_pushdown.json"

#: (variant name, pushdown enabled, columnar batches enabled).
VARIANTS = (
    ("off-row", False, False),
    ("off-col", False, True),
    ("on-row", True, False),
    ("on-col", True, True),
)


def _run(bundle, seed: int, pushdown: bool, columnar: bool) -> dict:
    # Derived-record uids seed the simulated noise; reset the global
    # counter so every variant replays the identical uid sequence.
    reset_uid_counter()
    llm = SimulatedLLM(oracle=SemanticOracle(bundle.registry), seed=seed)
    config = QueryProcessorConfig(
        llm=llm,
        optimize=False,
        parallelism=PARALLELISM,
        seed=seed,
        pushdown=pushdown,
        columnar=columnar,
    )
    # Written order puts the semantic filter first: without pushdown every
    # record is billed through it; with pushdown the hoisted WHERE prunes
    # structurally-irrelevant records for free.
    result = (
        Dataset.from_source(bundle.source())
        .sem_filter(instruction_for("qa.flag_urgent"))
        .where(WHERE)
        .sem_map(Field("amount", float, "extracted amount"), instruction_for("qa.amount"))
        .run(config)
    )
    first_llm_in = next(
        (stats.records_in for stats in result.operator_stats if stats.llm_calls),
        0,
    )
    return {
        "time_s": result.total_time_s,
        "cost_usd": result.total_cost_usd,
        "first_llm_records": first_llm_in,
        "records": [(r.uid, tuple(sorted(r.fields.items()))) for r in result.records],
    }


def _sweep(seeds) -> dict:
    """seed -> {variants, prune_ratio, cost_ratio, speedup, identical}."""
    results = {}
    for seed in seeds:
        bundle = build_corpus(CorpusSpec(seed=seed, n_records=N_RECORDS))
        variants = {
            name: _run(bundle, seed, pushdown, columnar)
            for name, pushdown, columnar in VARIANTS
        }
        off, on = variants["off-row"], variants["on-col"]
        reference = off["records"]
        results[seed] = {
            "variants": variants,
            "prune_ratio": off["first_llm_records"] / max(1, on["first_llm_records"]),
            "cost_ratio": off["cost_usd"] / max(1e-12, on["cost_usd"]),
            "speedup": off["time_s"] / max(1e-12, on["time_s"]),
            "identical": all(
                entry["records"] == reference for entry in variants.values()
            ),
        }
    return results


def _render(results) -> str:
    headers = [
        "Seed",
        "LLM rows off",
        "LLM rows on",
        "Prune",
        "Cost off ($)",
        "Cost on ($)",
        "Cost ratio",
        "Speedup",
        "Identical",
    ]
    rows = []
    for seed, entry in sorted(results.items()):
        off = entry["variants"]["off-row"]
        on = entry["variants"]["on-col"]
        rows.append(
            [
                str(seed),
                str(off["first_llm_records"]),
                str(on["first_llm_records"]),
                f"{entry['prune_ratio']:.2f}x",
                f"{off['cost_usd']:.4f}",
                f"{on['cost_usd']:.4f}",
                f"{entry['cost_ratio']:.2f}x",
                f"{entry['speedup']:.2f}x",
                "yes" if entry["identical"] else "NO",
            ]
        )
    return format_table(
        headers,
        rows,
        title=(
            f"SQL pushdown (filter->where[{WHERE}]->map, "
            f"{N_RECORDS} records, parallelism {PARALLELISM})"
        ),
    )


def _check_contract(results) -> None:
    for seed, entry in results.items():
        assert entry["identical"], (
            f"seed {seed}: pushdown variants disagree on records"
        )
        assert entry["prune_ratio"] >= MIN_PRUNE_RATIO, (
            f"seed {seed}: prune ratio {entry['prune_ratio']:.2f}x "
            f"below the {MIN_PRUNE_RATIO}x floor"
        )
        assert entry["cost_ratio"] >= MIN_COST_RATIO, (
            f"seed {seed}: cost ratio {entry['cost_ratio']:.2f}x "
            f"below the {MIN_COST_RATIO}x floor"
        )
        assert entry["speedup"] >= MIN_SPEEDUP, (
            f"seed {seed}: speedup {entry['speedup']:.2f}x "
            f"below the {MIN_SPEEDUP}x floor"
        )


def _save_json(results_dir: Path, results) -> None:
    payload = {
        "plan": f"qa sem_filter->where[{WHERE}]->sem_map(amount)",
        "n_records": N_RECORDS,
        "parallelism": PARALLELISM,
        "min_prune_ratio": MIN_PRUNE_RATIO,
        "min_cost_ratio": MIN_COST_RATIO,
        "min_speedup": MIN_SPEEDUP,
        "seeds": {
            str(seed): {
                "variants": {
                    name: {
                        "time_s": variant["time_s"],
                        "cost_usd": variant["cost_usd"],
                        "first_llm_records": variant["first_llm_records"],
                    }
                    for name, variant in entry["variants"].items()
                },
                "prune_ratio": entry["prune_ratio"],
                "cost_ratio": entry["cost_ratio"],
                "speedup": entry["speedup"],
                "identical_records": entry["identical"],
            }
            for seed, entry in results.items()
        },
    }
    path = results_dir / JSON_NAME
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {path}")


def bench_pushdown(benchmark, results_dir):
    results = benchmark.pedantic(_sweep, args=(SEEDS,), rounds=1, iterations=1)
    report = _render(results)
    save_report(results_dir, "pushdown", report)
    _save_json(results_dir, results)
    benchmark.extra_info["measured"] = {
        str(seed): {
            "prune_ratio": entry["prune_ratio"],
            "cost_ratio": entry["cost_ratio"],
            "speedup": entry["speedup"],
        }
        for seed, entry in results.items()
    }
    _check_contract(results)


def main(argv: list[str]) -> int:
    unknown = [arg for arg in argv if arg != "--smoke"]
    if unknown:
        print(f"usage: bench_pushdown.py [--smoke]  (unknown: {unknown})")
        return 2
    smoke = "--smoke" in argv
    seeds = SEEDS[:1] if smoke else SEEDS
    results = _sweep(seeds)
    print(_render(results))
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    _save_json(RESULTS_DIR, results)
    _check_contract(results)
    worst = min(entry["prune_ratio"] for entry in results.values())
    print(
        f"\npushdown prunes >= {worst:.2f}x of the records before the first "
        f"LLM operator with bit-identical results in every mode — contract holds"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
