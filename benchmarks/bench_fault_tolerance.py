"""Fault-tolerance sweep: fault rate vs. answer quality / cost / time.

The simulated LLM service injects seeded transient faults (429s, timeouts,
5xx) at a configurable per-attempt rate; the retry policy backs off with
seeded jitter, charging every failed attempt and every wait to the usage
tracker and virtual clock.  This bench sweeps the fault rate for the three
Table-1 systems and verifies the resilience contract:

- **Retries on**: headline quality is *bit-identical* to the fault-free run
  (the fault schedule and the answer-noise schedule are independent seeded
  streams), while cost and time rise — the measurable price of resilience —
  and operator stats report ``retried_calls > 0``.
- **Retries off**: the run degrades gracefully (records are skipped and
  flagged, never a crash).

Run standalone for a quick check::

    PYTHONPATH=src python benchmarks/bench_fault_tolerance.py --smoke
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from conftest import save_report

from repro.bench.harness import SystemSummary, run_trials
from repro.bench.systems import (
    kramabench_codeagent_system,
    kramabench_compute_system,
    kramabench_semops_system,
)
from repro.llm.faults import FaultConfig, RetryPolicy
from repro.utils.formatting import format_table

N_TRIALS = 3
BASE_SEED = 20260806
FAULT_RATES = (0.0, 0.1, 0.3)

RETRY = RetryPolicy(max_attempts=5, base_backoff_s=0.5, jitter=0.25)
NO_RETRY = RetryPolicy(enabled=False)


def _systems(bundle, rate: float, retry: RetryPolicy, on_failure: str = "skip"):
    fault = FaultConfig(rate=rate) if rate > 0 else None
    return {
        "Sem. Ops": kramabench_semops_system(bundle, fault, retry, on_failure=on_failure),
        "CodeAgent": kramabench_codeagent_system(bundle, fault, retry),
        "PZ compute": kramabench_compute_system(
            bundle, fault_config=fault, retry_policy=retry
        ),
    }


def _sweep(bundle, rates, n_trials: int, systems=("Sem. Ops", "CodeAgent", "PZ compute")):
    """rate -> {system name -> SystemSummary} with retries on."""
    results: dict[float, dict[str, SystemSummary]] = {}
    for rate in rates:
        builders = _systems(bundle, rate, RETRY)
        results[rate] = {
            name: run_trials(name, builders[name], n_trials, BASE_SEED)
            for name in systems
        }
    return results

def _retries(summary: SystemSummary) -> int:
    return sum(
        outcome.detail.get("retried_calls", outcome.detail.get("llm_failures", 0)) or 0
        for outcome in summary.outcomes
    )


def _render(results) -> str:
    headers = ["System", "Fault rate", "Pct. Err.", "Cost ($)", "Time (s)", "Retried"]
    rows = []
    names = list(next(iter(results.values())))
    for name in names:
        for rate, summaries in sorted(results.items()):
            summary = summaries[name]
            rows.append(
                [
                    name,
                    f"{rate:.0%}",
                    f"{summary.quality['pct_err']:.2f}%",
                    f"{summary.cost_usd:.2f}",
                    f"{summary.time_s:.1f}",
                    str(_retries(summary)),
                ]
            )
    return format_table(
        headers, rows, title="Fault tolerance: fault rate vs. quality/cost/time"
    )


def _check_contract(results, baseline_rate=0.0, faulty_rate=0.1) -> None:
    """Assert the resilience contract between two sweep points.

    Quality must be bit-identical for every system.  The strict cost/time/
    retry checks apply to the call-heavy systems; the naive CodeAgent makes
    so few LLM calls that a given seed may legitimately draw zero faults.
    """
    strict = ("Sem. Ops", "PZ compute")
    for name, base in results[baseline_rate].items():
        faulty = results[faulty_rate][name]
        assert faulty.quality == base.quality, (
            f"{name}: quality changed under faults with retries on "
            f"({base.quality} -> {faulty.quality})"
        )
        assert faulty.cost_usd >= base.cost_usd, f"{name}: faults cannot reduce cost"
        assert faulty.time_s >= base.time_s, f"{name}: faults cannot reduce time"
        if name in strict:
            assert faulty.cost_usd > base.cost_usd, f"{name}: faults should cost extra"
            assert faulty.time_s > base.time_s, f"{name}: faults should take longer"
            assert _retries(faulty) > 0, f"{name}: expected retried calls under faults"


def bench_fault_tolerance(benchmark, legal_bundle, results_dir):
    results = benchmark.pedantic(
        _sweep, args=(legal_bundle, FAULT_RATES, N_TRIALS), rounds=1, iterations=1
    )
    report = _render(results)
    save_report(results_dir, "fault_tolerance", report)
    benchmark.extra_info["measured"] = {
        f"{name}@{rate}": {
            "pct_err": s.quality["pct_err"],
            "cost": s.cost_usd,
            "time": s.time_s,
        }
        for rate, summaries in results.items()
        for name, s in summaries.items()
    }

    _check_contract(results)

    # Retries off: the sem-op program degrades gracefully instead of crashing.
    no_retry = run_trials(
        "Sem. Ops (no retry)",
        kramabench_semops_system(legal_bundle, FaultConfig(rate=0.1), NO_RETRY),
        N_TRIALS,
        BASE_SEED,
    )
    failed = sum(o.detail.get("failed_records", 0) for o in no_retry.outcomes)
    assert failed > 0, "retries off at 10% faults should flag degraded records"


def main(argv: list[str]) -> int:
    unknown = [arg for arg in argv if arg != "--smoke"]
    if unknown:
        print(f"usage: bench_fault_tolerance.py [--smoke]  (unknown: {unknown})")
        return 2
    smoke = "--smoke" in argv
    from repro.data.datasets import generate_legal_corpus

    bundle = generate_legal_corpus()
    rates = (0.0, 0.1) if smoke else FAULT_RATES
    n_trials = 1 if smoke else N_TRIALS
    systems = ("Sem. Ops", "CodeAgent") if smoke else (
        "Sem. Ops", "CodeAgent", "PZ compute"
    )
    results = _sweep(bundle, rates, n_trials, systems=systems)
    print(_render(results))
    _check_contract(results)
    no_retry = run_trials(
        "Sem. Ops (no retry)",
        kramabench_semops_system(bundle, FaultConfig(rate=0.1), NO_RETRY),
        n_trials,
        BASE_SEED,
    )
    failed = sum(o.detail.get("failed_records", 0) for o in no_retry.outcomes)
    assert failed > 0, "retries off at 10% faults should flag degraded records"
    print(
        f"\nretries-off degradation: {failed} flagged records across "
        f"{n_trials} trial(s), no crash — contract holds"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
