"""Study: the Deep-Research shortcut trade-off (paper §1/§2.1).

"An agent may generate a plan to read every file until it finds the file
with identity thefts in 2024, and then give up on reading the dataset
after the fourth or fifth file."  This bench sweeps the naive CodeAgent's
diligence (how many candidate files it actually reads) on the Kramabench
query and measures error/cost: errors fall as the agent reads more, cost
climbs — the exact trade-off the agent's shortcut heuristics sit on.
"""

from __future__ import annotations

import statistics

from conftest import save_report

from repro.agents.codeagent import CodeAgent
from repro.agents.filetools import build_file_tools
from repro.agents.policies.deep_research import KramabenchCodeAgentPolicy
from repro.bench.metrics import percent_error
from repro.data.datasets import kramabench as kb
from repro.llm.oracle import SemanticOracle
from repro.llm.simulated import SimulatedLLM
from repro.utils.formatting import format_table
from repro.utils.seeding import derive_seed

SEED = 141414
N_TRIALS = 6
CANDIDATE_COUNTS = (2, 6, 16, 40)


def _run(bundle, n_candidates: int) -> dict:
    truth = bundle.ground_truth["ratio"]
    errors, costs, ground_truth_hits = [], [], 0
    for trial in range(N_TRIALS):
        seed = derive_seed(SEED, n_candidates, trial)
        llm = SimulatedLLM(oracle=SemanticOracle(bundle.registry), seed=seed)
        agent = CodeAgent(
            llm,
            build_file_tools(bundle.corpus),
            KramabenchCodeAgentPolicy(n_candidates=n_candidates, batch_size=4),
            seed=seed,
            max_steps=24,
        )
        result = agent.run(kb.QUERY_RATIO)
        answer = result.answer if isinstance(result.answer, dict) else {}
        errors.append(percent_error(answer.get("ratio"), truth))
        costs.append(result.cost_usd)
        if answer.get("source") == bundle.ground_truth["ground_truth_file"]:
            ground_truth_hits += 1
    return {
        "err": statistics.mean(errors),
        "cost": statistics.mean(costs),
        "gt_hits": ground_truth_hits,
    }


def bench_diligence(benchmark, legal_bundle, results_dir):
    results = benchmark.pedantic(
        lambda: {n: _run(legal_bundle, n) for n in CANDIDATE_COUNTS},
        rounds=1,
        iterations=1,
    )
    rows = [
        [n, f"{r['err']:.2f}%", f"{r['cost']:.4f}", f"{r['gt_hits']}/{N_TRIALS}"]
        for n, r in results.items()
    ]
    report = format_table(
        ["Files read", "Avg pct. err.", "Cost ($)", "Found ground truth"],
        rows,
        title="Naive CodeAgent diligence sweep on Kramabench legal-easy-3",
    )
    save_report(results_dir, "diligence", report)
    benchmark.extra_info["measured"] = {str(k): v for k, v in results.items()}

    lowest, highest = CANDIDATE_COUNTS[0], CANDIDATE_COUNTS[-1]
    assert results[highest]["err"] < results[lowest]["err"]
    assert results[highest]["cost"] > results[lowest]["cost"]
    assert results[highest]["gt_hits"] > results[lowest]["gt_hits"]