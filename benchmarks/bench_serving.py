"""Multi-tenant serving: cross-query batching vs. serial FCFS (paper §4).

A heavy-tailed query mix from N tenant sessions (Zipf-skewed Poisson-ish
arrivals on the virtual clock) is admitted into one shared
:class:`~repro.core.runtime.AnalyticsRuntime` and drained twice from
identical submissions: once through the serial first-come-first-served
baseline and once through the cross-query batching scheduler (shared
provider waves, embedding merges, prefix-sharing rebates, stride-fair
tenant shares).

Emits ``BENCH_serving.json`` with p50/p95/p99 latency (from the runtime's
``serving.latency_s`` metrics histogram) and $/query vs. session count,
batch-fill rate, and fairness (max/min tenant slowdown).  Contract:
at >= 8 concurrent sessions batching improves BOTH
p99 latency and $/query, with bit-identical per-query records across
modes at every scale.

Run standalone for a quick check::

    PYTHONPATH=src python benchmarks/bench_serving.py --smoke
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from conftest import RESULTS_DIR, save_report

from repro.core.runtime import AnalyticsRuntime
from repro.obs import MetricsRegistry
from repro.qa.corpus import CorpusSpec, build_corpus
from repro.qa.plans import normalized_records
from repro.serve import TenantSpec, build_arrivals, submit_workload, zipf_rates
from repro.utils.formatting import format_table

SEED = 7171
#: Session counts swept (smoke mode runs SMOKE_SESSIONS).
SESSIONS = (2, 4, 8, 12)
SMOKE_SESSIONS = (2, 8)
#: Sessions from which the batching-wins contract is enforced.
MIN_CONTRACT_SESSIONS = 8
#: Records per corpus; small keeps per-query work bounded across the sweep.
CORPUS_RECORDS = 10
#: Hottest tenant's arrival rate (queries per virtual second); tenant k
#: arrives at rate BASE_RATE / (k + 1)  (Zipf skew 1.0).
BASE_RATE = 0.5
#: Virtual seconds of arrivals generated per sweep point.
DURATION_S = 16.0
PROVIDER_WIDTH = 16
JSON_NAME = "BENCH_serving.json"


def _run_mode(bundle, sessions: int, batching: bool) -> dict:
    """One serving run: fresh shared runtime, identical workload, one mode."""
    metrics = MetricsRegistry()
    runtime = AnalyticsRuntime.for_bundle(bundle, seed=SEED, metrics=metrics)
    serving = runtime.serving(
        tenants=[TenantSpec(name) for name in _tenants(sessions)],
        provider_width=PROVIDER_WIDTH,
        batching=batching,
    )
    arrivals = build_arrivals(SEED, zipf_rates(sessions, BASE_RATE), DURATION_S)
    jobs, rejected = submit_workload(serving, bundle, arrivals)
    report = serving.drain()
    summary = report.tenant_summary()
    slowdowns = [entry["mean_slowdown"] for entry in summary.values()]
    # Latency percentiles from the runtime-wide metrics histogram — the
    # same ``serving.latency_s`` series an operator would scrape.
    latency_hist = metrics.snapshot()["histograms"].get("serving.latency_s", {})
    return {
        "queries": len(jobs),
        "rejected": len(rejected),
        "p50_s": latency_hist.get("p50", 0.0),
        "p95_s": latency_hist.get("p95", 0.0),
        "p99_s": latency_hist.get("p99", 0.0),
        "cost_per_query_usd": report.cost_per_query_usd(),
        "makespan_s": report.makespan_s,
        "batch_fill": report.batch_fill(),
        "rebate_usd": report.rebate_total_usd(),
        "fairness_max_min_slowdown": (
            max(slowdowns) / max(min(slowdowns), 1e-9) if slowdowns else 1.0
        ),
        "waves": len(report.waves),
        "identity": [
            (job.tag, job.fingerprint, normalized_records(job.records))
            for job in jobs
        ],
    }


def _tenants(sessions: int) -> list[str]:
    return [f"tenant-{i:02d}" for i in range(sessions)]


def _sweep(session_counts) -> dict:
    """session count -> {serial, batched, identical_records}."""
    bundle = build_corpus(CorpusSpec(seed=SEED, n_records=CORPUS_RECORDS))
    results = {}
    for sessions in session_counts:
        serial = _run_mode(bundle, sessions, batching=False)
        batched = _run_mode(bundle, sessions, batching=True)
        identical = serial.pop("identity") == batched.pop("identity")
        results[sessions] = {
            "serial": serial,
            "batched": batched,
            "identical_records": identical,
        }
    return results


def _render(results) -> str:
    headers = [
        "Sessions", "Queries", "Mode", "p50 (s)", "p95 (s)", "p99 (s)", "$/query",
        "Fill", "Fairness", "Rebate ($)", "Identical",
    ]
    rows = []
    for sessions, entry in sorted(results.items()):
        for mode in ("serial", "batched"):
            stats = entry[mode]
            rows.append(
                [
                    str(sessions),
                    str(stats["queries"]),
                    mode,
                    f"{stats['p50_s']:.1f}",
                    f"{stats['p95_s']:.1f}",
                    f"{stats['p99_s']:.1f}",
                    f"{stats['cost_per_query_usd']:.4f}",
                    f"{stats['batch_fill']:.2f}" if mode == "batched" else "-",
                    f"{stats['fairness_max_min_slowdown']:.2f}",
                    f"{stats['rebate_usd']:.4f}",
                    "yes" if entry["identical_records"] else "NO",
                ]
            )
    return format_table(
        headers,
        rows,
        title="Multi-tenant serving: cross-query batching vs serial FCFS",
    )


def _check_contract(results) -> None:
    for sessions, entry in results.items():
        assert entry["identical_records"], (
            f"{sessions} sessions: batched records differ from serial"
        )
        serial, batched = entry["serial"], entry["batched"]
        assert batched["makespan_s"] <= serial["makespan_s"] + 1e-9, (
            f"{sessions} sessions: batched makespan regressed"
        )
        if sessions < MIN_CONTRACT_SESSIONS:
            continue
        assert batched["p99_s"] < serial["p99_s"], (
            f"{sessions} sessions: batched p99 {batched['p99_s']:.2f}s not "
            f"below serial {serial['p99_s']:.2f}s"
        )
        assert batched["cost_per_query_usd"] < serial["cost_per_query_usd"], (
            f"{sessions} sessions: batched $/query "
            f"{batched['cost_per_query_usd']:.5f} not below serial "
            f"{serial['cost_per_query_usd']:.5f}"
        )


def _save_json(results_dir: Path, results) -> None:
    payload = {
        "workload": (
            f"qa corpus ({CORPUS_RECORDS} records), heavy-tailed template "
            f"mix, Zipf arrivals at base rate {BASE_RATE}/s over "
            f"{DURATION_S:.0f}s"
        ),
        "provider_width": PROVIDER_WIDTH,
        "min_contract_sessions": MIN_CONTRACT_SESSIONS,
        "sessions": {str(n): entry for n, entry in results.items()},
    }
    path = results_dir / JSON_NAME
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {path}")


# ----------------------------------------------------------------------
# pytest-benchmark entry point
# ----------------------------------------------------------------------


def bench_serving(benchmark, results_dir):
    results = benchmark.pedantic(
        lambda: _sweep(SESSIONS), rounds=1, iterations=1
    )
    save_report(results_dir, "serving", _render(results))
    _save_json(results_dir, results)
    benchmark.extra_info["measured"] = {
        str(n): {
            "serial_p99_s": entry["serial"]["p99_s"],
            "batched_p99_s": entry["batched"]["p99_s"],
            "serial_cost_per_query": entry["serial"]["cost_per_query_usd"],
            "batched_cost_per_query": entry["batched"]["cost_per_query_usd"],
        }
        for n, entry in results.items()
    }
    _check_contract(results)


def main(argv: list[str]) -> int:
    unknown = [arg for arg in argv if arg != "--smoke"]
    if unknown:
        print(f"usage: bench_serving.py [--smoke]  (unknown: {unknown})")
        return 2
    smoke = "--smoke" in argv
    session_counts = SMOKE_SESSIONS if smoke else SESSIONS
    results = _sweep(session_counts)
    print(_render(results))
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    _save_json(RESULTS_DIR, results)
    _check_contract(results)
    print("serving contract OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
