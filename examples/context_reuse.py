"""Context reuse (paper §2.4/§3): materialized views for AI analytics.

Issues two related queries against the legal data lake.  Without reuse the
second query's semantic program re-scans the corpus; with the
ContextManager enabled it retrieves the Context materialized by the first
query (high description similarity) and runs over the narrowed record set,
cutting cost and simulated runtime.

Run:  python examples/context_reuse.py
"""

from repro.core import AnalyticsRuntime
from repro.data.datasets import generate_legal_corpus

FIRST = (
    "Find the files which report national identity theft statistics for "
    "the year 2001 and extract the number of identity theft reports in "
    "the year 2001."
)
SECOND = (
    "Find the files which report national identity theft statistics for "
    "the year 2024 and extract the number of identity theft reports in "
    "the year 2024."
)


def run(reuse: bool) -> None:
    bundle = generate_legal_corpus(seed=7)
    runtime = AnalyticsRuntime.for_bundle(bundle, seed=9, reuse_contexts=reuse)
    context = runtime.make_context(bundle)

    from repro.core.program_tool import build_program_tool

    tool = build_program_tool(context, runtime)
    first = tool(FIRST)
    cost_after_first = runtime.usage().cost_usd
    second = tool(SECOND)
    total = runtime.usage().cost_usd

    print(f"reuse={'on ' if reuse else 'off'}  "
          f"first query: {len(first)} records (${cost_after_first:.3f})  "
          f"second query: {len(second)} records "
          f"(+${total - cost_after_first:.3f})  total=${total:.3f}  "
          f"time={runtime.elapsed_s:.0f}s")
    if reuse:
        print(f"  cached contexts: {len(runtime.context_manager)}; "
              f"hits: {sum(e.hits for e in runtime.context_manager.entries())}")


def main() -> None:
    print("Two related queries; the second can reuse the first's "
          "materialized Context.\n")
    run(reuse=False)
    run(reuse=True)


if __name__ == "__main__":
    main()
