"""The SQL leg of the vision (paper §1/§2.4): extract once, query forever.

Uses one semantic-operator program to extract structured fields from the
Enron corpus, materializes them as a SQL table, and then answers several
follow-up questions with plain SQL — no further LLM calls, zero marginal
cost.

Run:  python examples/sql_materialization.py
"""

from repro.core import AnalyticsRuntime
from repro.data.datasets import generate_enron_corpus
from repro.data.datasets.enron import (
    FILTER_MENTIONS,
    MAP_SENDER,
    MAP_SUBJECT,
)
from repro.data.schemas import Field
from repro.sem import Dataset


def main() -> None:
    bundle = generate_enron_corpus(seed=11)
    runtime = AnalyticsRuntime.for_bundle(bundle, seed=5)

    extraction = (
        Dataset.from_source(bundle.source())
        .sem_filter(FILTER_MENTIONS)
        .sem_map(
            [
                (Field("x_sender", str, "sender address"), MAP_SENDER),
                (Field("x_subject", str, "subject line"), MAP_SUBJECT),
            ]
        )
    )
    result = extraction.run(runtime.program_config(tag="materialize"))
    print(f"Extracted {len(result.records)} transaction-related emails "
          f"for ${result.total_cost_usd:.3f} "
          f"({result.total_time_s:.0f}s simulated)")

    runtime.materialize_records(
        "transaction_emails",
        result.records,
        fields=["filename", "x_sender", "x_subject"],
    )

    cost_before = runtime.usage().cost_usd
    print("\nTop senders (pure SQL, no LLM):")
    for row in runtime.sql(
        "SELECT x_sender, COUNT(*) AS n FROM transaction_emails "
        "GROUP BY x_sender ORDER BY n DESC, x_sender LIMIT 5"
    ).to_dicts():
        print(f"  {row['x_sender']:<32} {row['n']}")

    print("\nForwarded-subject share:")
    row = runtime.sql(
        "SELECT COUNT(*) AS fw FROM transaction_emails "
        "WHERE lower(x_subject) LIKE 'fw:%'"
    ).to_dicts()[0]
    total = runtime.sql("SELECT COUNT(*) AS n FROM transaction_emails").scalar()
    print(f"  {row['fw']} of {total} extracted emails have forwarded subjects")

    print(f"\nMarginal LLM cost of the SQL stage: "
          f"${runtime.usage().cost_usd - cost_before:.4f}")


if __name__ == "__main__":
    main()
