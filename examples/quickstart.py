"""Quickstart: semantic operators + optimizer + SQL materialization.

Runs a small AI-driven analytics pipeline over a synthetic real-estate
corpus: a semantic filter ("modern and attractive"), a plain Python filter
(price cap), and a semantic classification, all optimized by the cost-based
optimizer — then materializes the result into a SQL table and queries it.

Run:  python examples/quickstart.py
"""

from repro.core import AnalyticsRuntime
from repro.data.datasets import generate_realestate_corpus
from repro.data.datasets.realestate import FILTER_MODERN, MAP_STYLE, STYLES
from repro.sem import Dataset


def main() -> None:
    bundle = generate_realestate_corpus(seed=23)
    runtime = AnalyticsRuntime.for_bundle(bundle, seed=1)

    listings = Dataset.from_source(bundle.source())
    query = (
        listings
        .filter(lambda record: record["price"] <= 1_200_000, description="price cap")
        .sem_filter(FILTER_MODERN)
        .sem_classify("style", STYLES, MAP_STYLE)
    )

    print("Logical plan:")
    print(query.explain())
    print()

    result, report = query.run_with_report(runtime.program_config(tag="quickstart"))
    print(f"Matched {len(result.records)} of {len(bundle.records())} listings")
    print(f"Cost: ${result.total_cost_usd:.4f} "
          f"(+${result.optimization_cost_usd:.4f} optimizer sampling)")
    print(f"Simulated time: {result.total_time_s:.1f}s")
    print(f"Models chosen by the optimizer: {report.chosen_models}")
    print()

    for record in result.records[:5]:
        print(f"  {record['listing_id']}  ${record['price']:>9,}  "
              f"{record['style']:<10}  {record['address']}")
    print()

    # Materialize into SQL so future queries skip the LLM entirely.
    runtime.materialize_records(
        "modern_listings",
        result.records,
        fields=["listing_id", "price", "bedrooms", "style"],
    )
    rows = runtime.sql(
        "SELECT style, COUNT(*) AS n, AVG(price) AS avg_price "
        "FROM modern_listings GROUP BY style ORDER BY n DESC"
    )
    print("SQL over the materialized table:")
    for row in rows.to_dicts():
        print(f"  {row['style']:<10} n={row['n']:<3} avg_price=${row['avg_price']:,.0f}")


if __name__ == "__main__":
    main()
