"""The paper's Figure 1 (left) / Figure 2 walkthrough.

Builds a Context over the 132-file legal data lake, runs a ``search``
operator to look for information on identity thefts (producing a derived
Context with an enriched description), then runs ``compute`` on the
original evaluation query.  Prints the Context lineage and the compute
agent's execution trace — the iterate-between-programs-and-Python
behaviour the paper illustrates.

Run:  python examples/kramabench_legal.py
"""

from repro.core import AnalyticsRuntime
from repro.data.datasets import generate_legal_corpus
from repro.data.datasets.kramabench import QUERY_RATIO


def main() -> None:
    bundle = generate_legal_corpus(seed=7)
    runtime = AnalyticsRuntime.for_bundle(bundle, seed=7)

    # Figure 2: an initial Context with description, indexing, and tools.
    context = runtime.make_context(bundle, build_index=True)
    print(f"Initial context: {context.name} ({len(context)} files)")
    print(f"  desc: {context.desc[:120]}...")
    print()

    # search: enrich the Context with findings about identity thefts.
    found = runtime.search(context, "information on identity theft reports")
    enriched = found.output_context
    print("After search:")
    print(f"  relevant items: {found.findings.get('relevant_items')}")
    print(f"  enriched desc (tail): ...{enriched.desc[-220:]}")
    print()

    # compute: answer the Kramabench legal-easy-3 query.
    result = runtime.compute(enriched, QUERY_RATIO)
    truth = bundle.ground_truth["ratio"]
    answer = result.answer or {}
    print(f"Query: {QUERY_RATIO}")
    print(f"Answer: ratio={answer.get('ratio'):.4f} from {answer.get('source')}")
    print(f"Ground truth: {truth:.4f} "
          f"(error {abs(answer.get('ratio', 0) - truth) / truth * 100:.3f}%)")
    print(f"Cost: ${result.cost_usd:.2f}  simulated time: {result.time_s:.0f}s")
    print()

    print("Compute agent trace:")
    print(result.agent.trace.render())
    print()

    print("Materialized context lineage (newest first):")
    for ancestor in result.output_context.lineage():
        print(f"  - {ancestor.name}: {len(ancestor)} records")


if __name__ == "__main__":
    main()
