"""The paper's Figure 1 (right): Deep Research vs. optimized compute.

Runs the Enron document-processing query two ways — an open-Deep-Research
CodeAgent (keyword shortcuts, manual verification, low recall) and our
prototype's ``compute`` operator (one optimized semantic-operator
program, near-perfect recall) — and prints the precision/recall contrast
with each system's cost and simulated runtime.

Run:  python examples/enron_filter.py
"""

from repro.agents import CodeAgent
from repro.agents.filetools import build_file_tools
from repro.agents.policies import EnronCodeAgentPolicy
from repro.bench.metrics import set_metrics
from repro.core import AnalyticsRuntime
from repro.data.datasets import generate_enron_corpus
from repro.data.datasets.enron import QUERY_RELEVANT
from repro.llm import SemanticOracle, SimulatedLLM


def main() -> None:
    bundle = generate_enron_corpus(seed=11)
    gold = bundle.ground_truth["relevant_filenames"]
    print(f"Corpus: {len(bundle.records())} emails, {len(gold)} relevant")
    print(f"Query: {QUERY_RELEVANT}\n")

    # --- Open Deep Research baseline -----------------------------------
    llm = SimulatedLLM(oracle=SemanticOracle(bundle.registry), seed=3)
    agent = CodeAgent(
        llm, build_file_tools(bundle.corpus), EnronCodeAgentPolicy(), seed=3
    )
    baseline = agent.run(QUERY_RELEVANT)
    baseline_metrics = set_metrics(gold, baseline.answer or [])
    print("Open Deep Research CodeAgent:")
    print(f"  F1={baseline_metrics.f1:.3f}  recall={baseline_metrics.recall:.3f}  "
          f"precision={baseline_metrics.precision:.3f}")
    print(f"  cost=${baseline.cost_usd:.3f}  time={baseline.time_s:.0f}s  "
          f"steps={baseline.steps_used}")
    print("  (keyword grep + manual reading: high precision, low recall)\n")

    # --- Our prototype ---------------------------------------------------
    runtime = AnalyticsRuntime.for_bundle(bundle, seed=3)
    context = runtime.make_context(bundle)
    result = runtime.compute(context, QUERY_RELEVANT)
    returned = [row.get("filename") for row in (result.answer or [])]
    compute_metrics = set_metrics(gold, returned)
    print("PZ compute (optimized semantic-operator program):")
    print(f"  F1={compute_metrics.f1:.3f}  recall={compute_metrics.recall:.3f}  "
          f"precision={compute_metrics.precision:.3f}")
    print(f"  cost=${result.cost_usd:.3f}  time={result.time_s:.0f}s")
    if runtime.last_program_result is not None:
        print("  program operator stats:")
        for stats in runtime.last_program_result.operator_stats:
            print(f"    {stats.label}: {stats.records_in} -> {stats.records_out}")
    print()
    print(f"F1 improvement: {compute_metrics.f1 / max(1e-9, baseline_metrics.f1):.2f}x "
          f"(paper reports up to 1.95x)")


if __name__ == "__main__":
    main()
