"""Extending the runtime: a custom agent policy that uses SQL tools.

The paper's vision wants agents to materialize structured tables from
unstructured files and answer follow-ups with SQL.  This example shows the
extension surface: a user-defined :class:`AgentPolicy` whose generated
code calls the ``materialize_table`` / ``sql`` tools registered on the
Context — parsing the ground-truth CSV once, then computing the
identity-theft ratio with a single SQL query.

Run:  python examples/agent_with_sql.py
"""

import json

from repro.agents.codeagent import CodeAgent
from repro.agents.policies.base import ScriptedPolicy
from repro.core.program_tool import build_context_tools
from repro.core.runtime import AnalyticsRuntime
from repro.core.sql_tools import add_sql_tools
from repro.data.datasets import generate_legal_corpus
from repro.data.datasets.kramabench import QUERY_RATIO


class SqlAnalystPolicy(ScriptedPolicy):
    """Plan: materialize candidate CSVs, disambiguate by *schema*, query.

    Several files span 2001-2024 (ground truth, a military-consumer
    subset, a hotline-call series); only the right one has an
    ``identity_theft_reports`` column — a disambiguation that is trivial
    with structured tables and error-prone with raw text.
    """

    def step_0(self, task, trace, tools):
        return (
            "import json\n"
            "items = list_items()\n"
            "candidates = [k for k in items\n"
            "              if k.endswith('.csv') and '2001' in k and '2024' in k]\n"
            "print(json.dumps(candidates))\n"
        )

    def step_1(self, task, trace, tools):
        candidates = json.loads(trace.last_observation())[:4]
        self._tables = {f"t{i}": name for i, name in enumerate(candidates)}
        lines = ["import json", "schemas = {}"]
        for table, filename in self._tables.items():
            lines.append(f"schemas[{table!r}] = materialize_table({filename!r}, {table!r})")
        lines.append("print(json.dumps(schemas))")
        return "\n".join(lines) + "\n"

    def step_2(self, task, trace, tools):
        schemas = json.loads(trace.last_observation())
        chosen = next(
            (table for table, message in schemas.items()
             if "'identity_theft_reports'" in message and "'year'" in message),
            next(iter(schemas)),
        )
        source = self._tables[chosen]
        return (
            f"rows = sql(\"SELECT \"\n"
            f"           \"MAX(CASE WHEN year = 2024 THEN identity_theft_reports END) * 1.0 / \"\n"
            f"           \"MAX(CASE WHEN year = 2001 THEN identity_theft_reports END) AS ratio \"\n"
            f"           \"FROM {chosen}\")\n"
            f"final_answer({{'ratio': rows[0]['ratio'], 'method': 'sql',\n"
            f"               'source': {source!r}}})\n"
        )


def main() -> None:
    bundle = generate_legal_corpus(seed=7)
    runtime = AnalyticsRuntime.for_bundle(bundle, seed=31)
    context = add_sql_tools(
        runtime.make_context(bundle, build_index=True), runtime
    )

    agent = CodeAgent(
        runtime.llm,
        build_context_tools(context, runtime),
        SqlAnalystPolicy(),
        name="sql-analyst",
        seed=31,
    )
    result = agent.run(QUERY_RATIO, context_note=context.desc)

    truth = bundle.ground_truth["ratio"]
    print(f"Query: {QUERY_RATIO}")
    print(f"Answer via SQL: {result.answer}")
    print(f"Ground truth:   {truth:.4f}")
    print(f"Cost: ${result.cost_usd:.4f}  simulated time: {result.time_s:.1f}s  "
          f"steps: {result.steps_used}")
    print()
    print("Materialized tables available for future queries:",
          runtime.db.table_names())
    chosen = [t for t in runtime.db.table_names()
              if "identity_theft_reports" in runtime.db.table(t).column_names]
    print("Follow-up (free):",
          runtime.sql(f"SELECT COUNT(*) AS years FROM {chosen[0]}").to_dicts())


if __name__ == "__main__":
    main()
